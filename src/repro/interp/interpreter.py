"""A concrete interpreter for the repro IR.

Used for three purposes:

* measuring ``t_run`` in Table 1 (execution cost of each build),
* differential testing — every optimization level must compute the same
  result on the same concrete input, and
* serving as the ground-truth oracle for the symbolic executor's models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ir import (
    AllocaInst, Argument, BasicBlock, BinaryInst, BranchInst, CallInst,
    CastInst, Constant, ConstantArray, ConstantInt, Function, GEPInst,
    GlobalVariable, ICmpInst, Instruction, IntType, LoadInst, Module, Opcode,
    PhiInst, PointerType, ReturnInst, SelectInst, StoreInst, SwitchInst,
    Type, UndefValue, UnreachableInst, Value, eval_binary, eval_icmp,
)
from .errors import ErrorKind, ProgramError
from .memory import Memory


@dataclass
class ExecutionStats:
    """What one concrete run costs."""

    instructions_executed: int = 0
    branches_executed: int = 0
    calls_executed: int = 0
    loads_executed: int = 0
    stores_executed: int = 0
    max_call_depth: int = 0
    wall_seconds: float = 0.0


@dataclass
class ExecutionResult:
    """Outcome of a concrete run."""

    return_value: Optional[int]
    stats: ExecutionStats
    error: Optional[ProgramError] = None

    @property
    def crashed(self) -> bool:
        return self.error is not None


class _Frame:
    """One activation record."""

    __slots__ = ("function", "values", "block", "previous_block", "index")

    def __init__(self, function: Function) -> None:
        self.function = function
        self.values: Dict[int, int] = {}
        self.block: BasicBlock = function.entry_block
        self.previous_block: Optional[BasicBlock] = None
        self.index = 0


class Interpreter:
    """Executes IR functions concretely over the flat memory model."""

    def __init__(self, module: Module, max_steps: int = 50_000_000,
                 max_call_depth: int = 256) -> None:
        self.module = module
        self.memory = Memory()
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self.stats = ExecutionStats()
        self._globals: Dict[str, int] = {}
        self._intrinsics = {
            "__overify_check_fail": self._intrinsic_check_fail,
            "abort": self._intrinsic_check_fail,
            "__assert_fail": self._intrinsic_assert_fail,
        }
        self._initialize_globals()

    # ------------------------------------------------------------- globals
    def _initialize_globals(self) -> None:
        for gv in self.module.globals.values():
            size = gv.value_type.size_in_bytes()
            address = self.memory.allocate(size, name=gv.name,
                                           writable=not gv.is_constant)
            # Initializers are written before the object is marked read-only,
            # so bypass the writability check by toggling it afterwards.
            obj = self.memory.object_at(address)
            assert obj is not None
            obj.writable = True
            if isinstance(gv.initializer, ConstantInt):
                self.memory.store_int(address, gv.initializer.value, size)
            elif isinstance(gv.initializer, ConstantArray):
                self.memory.store_bytes(address, gv.initializer.as_bytes())
            obj.writable = not gv.is_constant
            self._globals[gv.name] = address

    # ------------------------------------------------------------- helpers
    def allocate_buffer(self, data: bytes, name: str = "buffer") -> int:
        """Allocate and initialize a byte buffer; returns its address."""
        address = self.memory.allocate(len(data) or 1, name=name)
        if data:
            self.memory.store_bytes(address, data)
        return address

    def value_of(self, value: Value, frame: _Frame) -> int:
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, UndefValue):
            return 0
        if isinstance(value, GlobalVariable):
            return self._globals[value.name]
        if isinstance(value, Function):
            raise ProgramError(ErrorKind.UNKNOWN_FUNCTION,
                               "function addresses cannot be taken")
        if isinstance(value, (Instruction, Argument)):
            try:
                return frame.values[id(value)]
            except KeyError as exc:
                raise ProgramError(
                    ErrorKind.UNREACHABLE_EXECUTED,
                    f"use of value %{value.name} before definition") from exc
        raise ProgramError(ErrorKind.UNKNOWN_FUNCTION,
                           f"cannot evaluate {value!r}")

    @staticmethod
    def _size_of(ty: Type) -> int:
        return ty.size_in_bytes()

    # ------------------------------------------------------------- running
    def run_function(self, function: Union[str, Function],
                     args: Sequence[int]) -> ExecutionResult:
        """Run ``function`` with integer/pointer arguments."""
        if isinstance(function, str):
            function = self.module.get_function(function)
        start = time.perf_counter()
        error: Optional[ProgramError] = None
        value: Optional[int] = None
        try:
            value = self._call(function, list(args), depth=0)
        except ProgramError as exc:
            error = exc
        self.stats.wall_seconds += time.perf_counter() - start
        return ExecutionResult(return_value=value, stats=self.stats,
                               error=error)

    def run_program(self, input_bytes: bytes,
                    entry: str = "main") -> ExecutionResult:
        """Run the workload entry point ``int main(unsigned char*, int)``
        on ``input_bytes`` (a NUL terminator is appended automatically)."""
        buffer = self.allocate_buffer(bytes(input_bytes) + b"\x00",
                                      name="input")
        return self.run_function(entry, [buffer, len(input_bytes)])

    # ------------------------------------------------------------- calls
    def _call(self, function: Function, args: List[int], depth: int) -> Optional[int]:
        if depth > self.max_call_depth:
            raise ProgramError(ErrorKind.STACK_OVERFLOW,
                               f"call depth exceeded in @{function.name}")
        if function.is_declaration:
            return self._call_external(function, args)
        self.stats.max_call_depth = max(self.stats.max_call_depth, depth)
        frame = _Frame(function)
        for argument, value in zip(function.arguments, args):
            frame.values[id(argument)] = value

        while True:
            block = frame.block
            # Phi nodes are evaluated together, based on the incoming edge.
            phis = block.phis()
            if phis:
                incoming = {}
                for phi in phis:
                    assert frame.previous_block is not None
                    incoming[id(phi)] = self.value_of(
                        phi.incoming_value_for(frame.previous_block), frame)
                    self.stats.instructions_executed += 1
                frame.values.update(incoming)
            for inst in block.instructions[len(phis):]:
                self._count_step(function, block)
                outcome = self._execute(inst, frame, depth)
                if outcome is None:
                    continue
                kind, payload = outcome
                if kind == "return":
                    return payload
                if kind == "jump":
                    frame.previous_block = block
                    frame.block = payload
                    break
            else:
                raise ProgramError(ErrorKind.UNREACHABLE_EXECUTED,
                                   f"block {block.name} fell through",
                                   function.name, block.name)

    def _count_step(self, function: Function, block: BasicBlock) -> None:
        self.stats.instructions_executed += 1
        if self.stats.instructions_executed > self.max_steps:
            raise ProgramError(ErrorKind.STEP_LIMIT,
                               f"exceeded {self.max_steps} steps",
                               function.name, block.name)

    def _call_external(self, function: Function, args: List[int]) -> Optional[int]:
        handler = self._intrinsics.get(function.name)
        if handler is None:
            raise ProgramError(ErrorKind.UNKNOWN_FUNCTION,
                               f"call to undefined function @{function.name}")
        return handler(args)

    def _intrinsic_check_fail(self, args: List[int]) -> Optional[int]:
        raise ProgramError(ErrorKind.CHECK_FAILURE, "__overify_check_fail")

    def _intrinsic_assert_fail(self, args: List[int]) -> Optional[int]:
        raise ProgramError(ErrorKind.ASSERTION_FAILURE, "__assert_fail")

    # ------------------------------------------------------------- execute
    def _execute(self, inst: Instruction, frame: _Frame,
                 depth: int) -> Optional[Tuple[str, object]]:
        function = frame.function
        if isinstance(inst, BinaryInst):
            ty = inst.type
            assert isinstance(ty, IntType)
            lhs = self.value_of(inst.lhs, frame)
            rhs = self.value_of(inst.rhs, frame)
            result = eval_binary(inst.opcode, ty, lhs & ty.mask, rhs & ty.mask)
            if result is None:
                raise ProgramError(ErrorKind.DIVISION_BY_ZERO, "",
                                   function.name, inst.parent.name
                                   if inst.parent else "")
            frame.values[id(inst)] = result
            return None
        if isinstance(inst, ICmpInst):
            lhs_ty = inst.lhs.type
            width_ty = lhs_ty if isinstance(lhs_ty, IntType) else IntType(64)
            lhs = self.value_of(inst.lhs, frame) & width_ty.mask
            rhs = self.value_of(inst.rhs, frame) & width_ty.mask
            frame.values[id(inst)] = int(eval_icmp(inst.predicate, width_ty,
                                                   lhs, rhs))
            return None
        if isinstance(inst, SelectInst):
            condition = self.value_of(inst.condition, frame)
            chosen = inst.true_value if condition & 1 else inst.false_value
            frame.values[id(inst)] = self.value_of(chosen, frame)
            return None
        if isinstance(inst, CastInst):
            frame.values[id(inst)] = self._execute_cast(inst, frame)
            return None
        if isinstance(inst, AllocaInst):
            size = self._size_of(inst.allocated_type)
            frame.values[id(inst)] = self.memory.allocate(
                size, name=inst.name or "alloca")
            return None
        if isinstance(inst, LoadInst):
            address = self.value_of(inst.pointer, frame)
            size = self._size_of(inst.type)
            self.stats.loads_executed += 1
            try:
                frame.values[id(inst)] = self.memory.load_int(address, size)
            except ProgramError as exc:
                exc.function = function.name
                exc.block = inst.parent.name if inst.parent else ""
                raise
            return None
        if isinstance(inst, StoreInst):
            address = self.value_of(inst.pointer, frame)
            value = self.value_of(inst.value, frame)
            size = self._size_of(inst.value.type)
            self.stats.stores_executed += 1
            try:
                self.memory.store_int(address, value, size)
            except ProgramError as exc:
                exc.function = function.name
                exc.block = inst.parent.name if inst.parent else ""
                raise
            return None
        if isinstance(inst, GEPInst):
            base = self.value_of(inst.base, frame)
            offset = sum(self._as_signed(self.value_of(index, frame), index)
                         for index in inst.indices)
            frame.values[id(inst)] = (base + offset) & ((1 << 64) - 1)
            return None
        if isinstance(inst, CallInst):
            callee = inst.callee
            if not isinstance(callee, Function):
                raise ProgramError(ErrorKind.UNKNOWN_FUNCTION,
                                   "indirect calls are not supported")
            args = [self.value_of(arg, frame) for arg in inst.args]
            self.stats.calls_executed += 1
            result = self._call(callee, args, depth + 1)
            if not inst.type.is_void:
                frame.values[id(inst)] = result if result is not None else 0
            return None
        if isinstance(inst, BranchInst):
            self.stats.branches_executed += 1
            if not inst.is_conditional:
                return "jump", inst.true_target
            condition = self.value_of(inst.condition, frame)
            return "jump", (inst.true_target if condition & 1
                            else inst.false_target)
        if isinstance(inst, SwitchInst):
            self.stats.branches_executed += 1
            value = self.value_of(inst.value, frame)
            for const, target in inst.cases():
                if isinstance(const, ConstantInt) and const.value == value:
                    return "jump", target
            return "jump", inst.default
        if isinstance(inst, ReturnInst):
            if inst.value is None:
                return "return", None
            return "return", self.value_of(inst.value, frame)
        if isinstance(inst, UnreachableInst):
            raise ProgramError(ErrorKind.UNREACHABLE_EXECUTED, "",
                               function.name,
                               inst.parent.name if inst.parent else "")
        raise ProgramError(ErrorKind.UNKNOWN_FUNCTION,
                           f"cannot execute {inst.opcode.value}")

    def _execute_cast(self, inst: CastInst, frame: _Frame) -> int:
        value = self.value_of(inst.value, frame)
        source_type = inst.value.type
        target_type = inst.type
        if inst.opcode in (Opcode.BITCAST, Opcode.INTTOPTR, Opcode.PTRTOINT):
            return value & ((1 << 64) - 1)
        assert isinstance(source_type, IntType)
        assert isinstance(target_type, IntType)
        value &= source_type.mask
        if inst.opcode is Opcode.ZEXT:
            return value
        if inst.opcode is Opcode.TRUNC:
            return value & target_type.mask
        if inst.opcode is Opcode.SEXT:
            if value & source_type.sign_bit:
                value -= (1 << source_type.width)
            return value & target_type.mask
        raise ProgramError(ErrorKind.UNKNOWN_FUNCTION,
                           f"unknown cast {inst.opcode.value}")

    @staticmethod
    def _as_signed(value: int, operand: Value) -> int:
        ty = operand.type
        if isinstance(ty, IntType) and value & ty.sign_bit:
            return value - (1 << ty.width)
        return value


def run_module(module: Module, input_bytes: bytes,
               entry: str = "main", max_steps: int = 50_000_000) -> ExecutionResult:
    """Convenience wrapper: run ``entry`` on ``input_bytes`` in a fresh
    interpreter."""
    interpreter = Interpreter(module, max_steps=max_steps)
    return interpreter.run_program(input_bytes, entry)
