"""Runtime error taxonomy shared by the concrete interpreter and (re-used
for reporting) by the symbolic executor."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class ErrorKind(enum.Enum):
    """The kinds of program failures the execution engines detect."""

    NULL_DEREFERENCE = "null pointer dereference"
    OUT_OF_BOUNDS = "out-of-bounds memory access"
    DIVISION_BY_ZERO = "division by zero"
    CHECK_FAILURE = "runtime check failure"
    ASSERTION_FAILURE = "assertion failure"
    UNREACHABLE_EXECUTED = "unreachable instruction executed"
    STACK_OVERFLOW = "call stack overflow"
    STEP_LIMIT = "execution step limit exceeded"
    INVALID_FREE = "invalid free"
    UNKNOWN_FUNCTION = "call to unknown function"


@dataclass
class ProgramError(Exception):
    """A detected program failure (a "crash" in the paper's terminology)."""

    kind: ErrorKind
    message: str = ""
    function: str = ""
    block: str = ""

    def __str__(self) -> str:
        where = f" in @{self.function}:{self.block}" if self.function else ""
        detail = f": {self.message}" if self.message else ""
        return f"{self.kind.value}{where}{detail}"
