"""The concrete interpreter as a :class:`VerificationBackend`.

One concrete execution is the degenerate verification run: a single path,
an error count of zero or one, and a bug signature when the run crashed —
the same outcome shape the symbolic backend reports, which is what lets
the harness and CLI treat "run it" and "verify it" uniformly.
"""

from __future__ import annotations

import time

from ..ir import Module
from ..verification import (
    VerificationBackend, VerificationOutcome, VerificationRequest,
    register_backend,
)
from .interpreter import run_module


class InterpBackend(VerificationBackend):
    """Single concrete execution on the request's concrete input."""

    name = "interp"

    def __init__(self, max_steps: int = 50_000_000) -> None:
        self.max_steps = max_steps

    def describe(self) -> str:
        if self.max_steps != 50_000_000:
            return f"interp<max_steps={self.max_steps}>"
        return "interp"

    def verify(self, module: Module,
               request: VerificationRequest) -> VerificationOutcome:
        max_steps = min(self.max_steps, request.max_instructions)
        start = time.perf_counter()
        result = run_module(module, request.concrete_input,
                            entry=request.entry, max_steps=max_steps)
        seconds = time.perf_counter() - start
        signatures = frozenset()
        if result.error is not None:
            signatures = frozenset({(result.error.kind.value,
                                     result.error.function,
                                     result.error.block)})
        return VerificationOutcome(
            backend=self.describe(),
            seconds=seconds,
            instructions=result.stats.instructions_executed,
            paths=1,
            errors=1 if result.crashed else 0,
            timed_out=result.error is not None and
            result.error.kind.name == "STEP_LIMIT",
            bug_signatures=signatures,
            return_value=result.return_value,
            detail=result,
        )


register_backend("interp", InterpBackend)
