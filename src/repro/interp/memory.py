"""Flat byte-addressable memory for the concrete interpreter.

Objects (globals, stack slots, harness-provided buffers) are carved out of a
single address space; every access is checked against the bounds of the
object it falls into, so memory-safety violations surface as
:class:`ProgramError` rather than silent corruption — the behaviour a
verification tool expects from its runtime.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional

from .errors import ErrorKind, ProgramError

#: Addresses below this are never valid (catches null + small offsets).
NULL_GUARD_SIZE = 4096


@dataclass
class MemoryObject:
    """One allocation in the flat address space."""

    base: int
    size: int
    name: str = ""
    writable: bool = True

    def contains(self, address: int, access_size: int) -> bool:
        return self.base <= address and \
            address + access_size <= self.base + self.size


class Memory:
    """A bump-allocated, bounds-checked byte memory."""

    def __init__(self) -> None:
        self._next_address = NULL_GUARD_SIZE
        self._objects: List[MemoryObject] = []
        self._bytes: Dict[int, int] = {}
        #: Interval index for lookup: bases ascend because allocation only
        #: ever bumps ``_next_address``, so ``_bases[i]`` is the base of
        #: ``_objects[i]`` and both lists stay sorted without effort.
        self._bases: List[int] = []

    # -------------------------------------------------------------- layout
    def allocate(self, size: int, name: str = "",
                 writable: bool = True) -> int:
        """Allocate ``size`` bytes and return the base address."""
        size = max(1, size)
        base = self._next_address
        # Pad allocations so adjacent objects never touch; off-by-one bugs
        # then hit unmapped memory instead of a neighbouring object.
        self._next_address += size + 16
        obj = MemoryObject(base=base, size=size, name=name, writable=writable)
        self._objects.append(obj)
        self._bases.append(base)
        return base

    def object_at(self, address: int) -> Optional[MemoryObject]:
        """The object containing ``address``, if any.

        Binary search over the (always sorted) base list: a linear scan
        here made every load/store O(objects) and dominated interpreter
        time on alloca-heavy programs.
        """
        index = bisect_right(self._bases, address) - 1
        if index < 0:
            return None
        obj = self._objects[index]
        if obj.base <= address < obj.base + obj.size:
            return obj
        return None

    # -------------------------------------------------------------- access
    def _check(self, address: int, size: int, write: bool) -> MemoryObject:
        if address < NULL_GUARD_SIZE:
            raise ProgramError(ErrorKind.NULL_DEREFERENCE,
                               f"access at address {address:#x}")
        obj = self.object_at(address)
        if obj is None or not obj.contains(address, size):
            raise ProgramError(
                ErrorKind.OUT_OF_BOUNDS,
                f"{'write' if write else 'read'} of {size} bytes at "
                f"{address:#x}")
        if write and not obj.writable:
            raise ProgramError(ErrorKind.OUT_OF_BOUNDS,
                               f"write to read-only object '{obj.name}'")
        return obj

    def store_bytes(self, address: int, data: bytes) -> None:
        self._check(address, len(data), write=True)
        for offset, value in enumerate(data):
            self._bytes[address + offset] = value

    def load_bytes(self, address: int, size: int) -> bytes:
        self._check(address, size, write=False)
        return bytes(self._bytes.get(address + i, 0) for i in range(size))

    def store_int(self, address: int, value: int, size: int) -> None:
        self.store_bytes(address, (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"))

    def load_int(self, address: int, size: int) -> int:
        return int.from_bytes(self.load_bytes(address, size), "little")

    # -------------------------------------------------------------- stats
    @property
    def allocated_objects(self) -> int:
        return len(self._objects)

    @property
    def allocated_bytes(self) -> int:
        return sum(obj.size for obj in self._objects)
