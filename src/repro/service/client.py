"""Blocking client for the verification service.

One :class:`ServiceClient` talks JSON-lines to a
:class:`~repro.service.server.VerificationServer` over its unix-domain
socket.  Each request opens a fresh connection — the protocol is
one-line-in / one-line-out, and a connection per request keeps the
client trivially usable from multiple threads (the scripted smoke test
and the test suite both do).
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, Optional


class ServiceError(RuntimeError):
    """The service could not be reached or reported a failure."""


class ServiceClient:
    """Talk to a :class:`~repro.service.server.VerificationServer`.

    Parameters
    ----------
    socket_path:
        The server's unix-domain socket.
    timeout:
        Per-request socket timeout in seconds.  Verifications can be
        slow; size this for the workloads being submitted.
    """

    def __init__(self, socket_path: object, timeout: float = 60.0) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout

    # --------------------------------------------------------------- wire
    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Send one request object, return the response object.

        Raises :class:`ServiceError` on connection failure, malformed
        responses, or an ``{"ok": false}`` reply.
        """
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
                sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
                chunks = []
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
                    if chunk.endswith(b"\n"):
                        break
        except OSError as exc:
            raise ServiceError(
                f"verification service at {self.socket_path}: {exc}"
            ) from exc
        raw = b"".join(chunks)
        if not raw:
            raise ServiceError(
                f"verification service at {self.socket_path}: empty reply")
        try:
            response = json.loads(raw)
        except ValueError as exc:
            raise ServiceError(
                f"verification service: malformed reply {raw!r}") from exc
        if not isinstance(response, dict):
            raise ServiceError(
                f"verification service: non-object reply {response!r}")
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "verification service failure"))
        return response

    # ---------------------------------------------------------------- ops
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> Dict[str, object]:
        return self.request({"op": "stats"})

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})

    def verify(self, *, workload: Optional[str] = None,
               source: Optional[str] = None, level: str = "-OVERIFY",
               input_bytes: Optional[int] = None,
               timeout: Optional[float] = None,
               max_instructions: Optional[int] = None,
               entry: Optional[str] = None,
               job_id: Optional[str] = None) -> Dict[str, object]:
        """Submit one compile-and-verify job and wait for its result."""
        payload: Dict[str, object] = {"op": "verify", "level": level}
        if workload is not None:
            payload["workload"] = workload
        if source is not None:
            payload["source"] = source
        if input_bytes is not None:
            payload["input_bytes"] = input_bytes
        if timeout is not None:
            payload["timeout"] = timeout
        if max_instructions is not None:
            payload["max_instructions"] = max_instructions
        if entry is not None:
            payload["entry"] = entry
        if job_id is not None:
            payload["id"] = job_id
        return self.request(payload)

    def wait_until_ready(self, deadline: float = 10.0) -> None:
        """Poll ``ping`` until the server answers (it may still be
        binding its socket); raise :class:`ServiceError` after
        ``deadline`` seconds."""
        end = time.monotonic() + deadline
        while True:
            try:
                if self.ping():
                    return
            except ServiceError:
                pass
            if time.monotonic() >= end:
                raise ServiceError(
                    f"verification service at {self.socket_path} did not "
                    f"come up within {deadline:.1f}s")
            time.sleep(0.05)


__all__ = ["ServiceClient", "ServiceError"]
