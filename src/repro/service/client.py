"""Blocking client for the verification service.

One :class:`ServiceClient` talks JSON-lines to a
:class:`~repro.service.server.VerificationServer` over its unix-domain
socket.  Each request opens a fresh connection — the protocol is
one-line-in / one-line-out, and a connection per request keeps the
client trivially usable from multiple threads (the scripted smoke test
and the test suite both do).

Failures come back as :class:`ServiceError` carrying the server's
structured fields (``kind``, ``retryable``, ``retry_after`` — see
``docs/robustness.md``).  With ``retries > 0`` the client re-sends
retryable failures itself, backing off exponentially with deterministic
jitter; the default ``retries=0`` keeps every failure loud.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Dict, Optional


class ServiceError(RuntimeError):
    """The service could not be reached or reported a failure.

    ``kind`` mirrors the server's ``error_kind`` (``"unavailable"`` when
    the failure happened on the wire, before any response);
    ``retryable`` says whether an identical retry can succeed;
    ``retry_after`` is the server's backoff hint in seconds, if it gave
    one.
    """

    def __init__(self, message: str, kind: str = "unavailable",
                 retryable: bool = True,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.retryable = retryable
        self.retry_after = retry_after


class ServiceClient:
    """Talk to a :class:`~repro.service.server.VerificationServer`.

    Parameters
    ----------
    socket_path:
        The server's unix-domain socket.
    timeout:
        Per-request socket timeout in seconds.  Verifications can be
        slow; size this for the workloads being submitted.
    retries:
        Re-send a request up to this many extra times when the failure
        is retryable (connection refused, backpressure, store hiccups).
        0 = fail on the first error.
    backoff:
        Base delay before the first retry; doubles per attempt up to
        ``backoff_cap``, floored by the server's ``retry_after`` hint.
    jitter_seed:
        Seeds the jitter applied to each delay (a deterministic client
        stays reproducible under test).
    """

    def __init__(self, socket_path: object, timeout: float = 60.0,
                 retries: int = 0, backoff: float = 0.1,
                 backoff_cap: float = 2.0, jitter_seed: int = 0) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._rng = random.Random(jitter_seed)

    # --------------------------------------------------------------- wire
    def _request_once(self,
                      payload: Dict[str, object]) -> Dict[str, object]:
        """One request/response exchange, no retries."""
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
                sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
                chunks = []
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
                    if chunk.endswith(b"\n"):
                        break
        except OSError as exc:
            raise ServiceError(
                f"verification service at {self.socket_path}: {exc}",
                kind="unavailable", retryable=True) from exc
        raw = b"".join(chunks)
        if not raw:
            raise ServiceError(
                f"verification service at {self.socket_path}: empty reply",
                kind="unavailable", retryable=True)
        try:
            response = json.loads(raw)
        except ValueError as exc:
            raise ServiceError(
                f"verification service: malformed reply {raw!r}",
                kind="protocol", retryable=False) from exc
        if not isinstance(response, dict):
            raise ServiceError(
                f"verification service: non-object reply {response!r}",
                kind="protocol", retryable=False)
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "verification service failure"),
                kind=str(response.get("error_kind", "failure")),
                retryable=bool(response.get("retryable", False)),
                retry_after=response.get("retry_after"))
        return response

    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Send one request object, return the response object.

        Raises :class:`ServiceError` on connection failure, malformed
        responses, or an ``{"ok": false}`` reply — after exhausting
        ``retries`` re-sends of retryable failures.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(payload)
            except ServiceError as exc:
                if attempt >= self.retries or not exc.retryable:
                    raise
                delay = min(self.backoff * (2 ** attempt), self.backoff_cap)
                if exc.retry_after is not None:
                    delay = max(delay, float(exc.retry_after))
            # Jitter in [0.5, 1.5) de-synchronizes competing clients.
            time.sleep(delay * (0.5 + self._rng.random()))
            attempt += 1

    # ---------------------------------------------------------------- ops
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> Dict[str, object]:
        return self.request({"op": "stats"})

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})

    def verify(self, *, workload: Optional[str] = None,
               source: Optional[str] = None, level: str = "-OVERIFY",
               input_bytes: Optional[int] = None,
               timeout: Optional[float] = None,
               max_instructions: Optional[int] = None,
               entry: Optional[str] = None,
               deadline: Optional[float] = None,
               job_id: Optional[str] = None) -> Dict[str, object]:
        """Submit one compile-and-verify job and wait for its result.

        ``deadline`` bounds the job's wall clock end to end: the engine's
        budget is capped to it, and the server answers
        ``error_kind="deadline"`` shortly past it even if the job wedges.
        """
        payload: Dict[str, object] = {"op": "verify", "level": level}
        if workload is not None:
            payload["workload"] = workload
        if source is not None:
            payload["source"] = source
        if input_bytes is not None:
            payload["input_bytes"] = input_bytes
        if timeout is not None:
            payload["timeout"] = timeout
        if max_instructions is not None:
            payload["max_instructions"] = max_instructions
        if entry is not None:
            payload["entry"] = entry
        if deadline is not None:
            payload["deadline"] = deadline
        if job_id is not None:
            payload["id"] = job_id
        return self.request(payload)

    def wait_until_ready(self, deadline: float = 10.0) -> None:
        """Poll ``ping`` until the server answers (it may still be
        binding its socket); raise :class:`ServiceError` after
        ``deadline`` seconds."""
        end = time.monotonic() + deadline
        while True:
            try:
                if self.ping():
                    return
            except ServiceError:
                pass
            if time.monotonic() >= end:
                raise ServiceError(
                    f"verification service at {self.socket_path} did not "
                    f"come up within {deadline:.1f}s")
            time.sleep(0.05)


__all__ = ["ServiceClient", "ServiceError"]
