"""The verification service: a persistent solver-knowledge store and an
asyncio front door over a local socket.

* :mod:`repro.service.store` — :class:`SolverKnowledgeStore`: solver
  results, UBTree SAT/UNSAT indices, canonical models and per-function
  verification memos, serialized to a versioned, checksummed,
  atomically-replaced file keyed by canonical constraint-group
  fingerprints.
* :mod:`repro.service.server` — :class:`VerificationServer`: the
  JSON-line front door that compiles, dedupes, memoizes and verifies
  jobs against store-primed shared solver caches.
* :mod:`repro.service.client` — :class:`ServiceClient`: the blocking
  client.

See ``docs/service.md``.
"""

from .client import ServiceClient, ServiceError
from .server import VerificationServer, serve
from .store import (
    SolverKnowledgeStore, StoreFormatError, WireError, expr_from_wire,
    expr_to_wire, group_fingerprint, verification_fingerprint,
)

__all__ = [
    "ServiceClient", "ServiceError",
    "VerificationServer", "serve",
    "SolverKnowledgeStore", "StoreFormatError", "WireError",
    "expr_from_wire", "expr_to_wire", "group_fingerprint",
    "verification_fingerprint",
]
