"""A persistent, cross-run solver-knowledge store.

-OVERIFY treats verification cost as a budget to engineer; the biggest
lever left after intra-run caching is **amortization across runs**: user
M+1 should never re-pay for anything user M already proved.  This module
persists the solver's learned knowledge — exact group results, UBTree
SAT/UNSAT counterexample sets (minimized UNSAT cores included), and
canonical concretization models — plus whole-run **verification memos**
keyed by post-pipeline IR fingerprints, so a resubmitted unchanged
function skips symbolic execution entirely.

Design points (see ``docs/service.md`` for the file format):

* **Canonical fingerprints.**  Expressions serialize as their
  deterministic DAG schedule (children before parents, shared nodes
  once), so the wire form is a canonical function of the expression; a
  constraint group's fingerprint is the SHA-256 over its sorted
  constraint wire forms and is therefore independent of process, hash
  seed, and constraint order.
* **Versioned, checksummed JSON-lines format with atomic writes.**  A
  header pins format name + version, every record carries a checksum of
  its own body, and a footer records the expected record count (a
  truncated tail is detected even when it ends on a line boundary).
  Saves go through a temp file + ``os.replace`` in the same directory,
  and re-read the current file first (read-merge-replace), so concurrent
  writers never corrupt the store and never read a half-written one.
* **Corruption degrades to cold, never to wrong.**  Any load problem —
  missing file, version mismatch, truncation, checksum mismatch,
  malformed JSON or wire form — empties the store and records the reason
  in :attr:`SolverKnowledgeStore.load_error`.  A store entry is only ever
  *added* to the solver caches through
  :meth:`~repro.symex.solver.SharedSolverCaches.absorb_state`, which the
  solver treats exactly like knowledge it solved itself.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import fields
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from ..faults import StoreError, site as _fault_site
from ..ir import Module
from ..ir.printer import print_module
from ..symex.executor import (
    BugReport, PathRecord, SymexReport, SymexStats,
)
from ..symex.expr import Expr, ExprOp
from ..symex.solver import SharedSolverCaches, SolverResult, SolverStats
from ..symex.state import StateStatus
from ..interp.errors import ErrorKind
from ..verification import VerificationOutcome, VerificationRequest

FORMAT_NAME = "repro-solver-store"
FORMAT_VERSION = 1

#: Fault sites around store persistence (``docs/robustness.md``).
#: ``store.write`` fires between the temp-file write and the atomic
#: rename — the torn-write window the save path must survive;
#: ``store.load`` fires at read time, degrading the run to a cold start.
_STORE_WRITE = _fault_site("store.write", StoreError)
_STORE_LOAD = _fault_site("store.load", StoreError)


class WireError(ValueError):
    """A serialized expression or record failed validation."""


class StoreFormatError(ValueError):
    """The store file is unreadable as a whole (version, truncation,
    checksum); the loader turns this into a cold start."""


# --------------------------------------------------------------- wire codec
# An expression's wire form is its evaluation schedule: a list of nodes in
# deterministic topological order (children before parents, shared
# subexpressions once, root last).  Constants are ["c", width, value],
# variables ["v", width, name], everything else [op, width, [child
# indices]].  Decoding rebuilds bottom-up through the raw Expr constructor,
# which re-interns each node — a decoded expression *is* (identity) the
# original within one process.  Raw construction bypasses the simplifying
# smart constructors, which is sound here: stored expressions are already
# in post-simplification form.

def expr_to_wire(expr: Expr) -> list:
    """The canonical JSON-ready form of ``expr``."""
    nodes: list = []
    for op, width, _operand_width, operand_indices, value, name in \
            expr._evaluation_schedule():
        if op is ExprOp.CONST:
            nodes.append(["c", width, value])
        elif op is ExprOp.VAR:
            nodes.append(["v", width, name])
        else:
            nodes.append([op.value, width, list(operand_indices)])
    return nodes


def expr_from_wire(nodes: object) -> Expr:
    """Rebuild (and re-intern) an expression from its wire form.

    Raises :class:`WireError` on any structural problem — unknown tags,
    out-of-range widths, forward references — so a damaged record can
    never materialize as a malformed expression."""
    if not isinstance(nodes, list) or not nodes:
        raise WireError("expression wire form must be a non-empty list")
    built: List[Expr] = []
    for node in nodes:
        if not isinstance(node, list) or len(node) != 3:
            raise WireError(f"malformed wire node {node!r}")
        tag, width, payload = node
        if isinstance(width, bool) or not isinstance(width, int) or \
                not 1 <= width <= 64:
            raise WireError(f"bad width in wire node {node!r}")
        if tag == "c":
            if isinstance(payload, bool) or not isinstance(payload, int):
                raise WireError(f"bad constant value in {node!r}")
            built.append(Expr(ExprOp.CONST, width, value=payload))
            continue
        if tag == "v":
            if not isinstance(payload, str) or not payload:
                raise WireError(f"bad variable name in {node!r}")
            built.append(Expr(ExprOp.VAR, width, name=payload))
            continue
        try:
            op = ExprOp(tag)
        except ValueError as exc:
            raise WireError(f"unknown operator {tag!r}") from exc
        if op is ExprOp.CONST or op is ExprOp.VAR or \
                not isinstance(payload, list) or not payload:
            raise WireError(f"malformed wire node {node!r}")
        operands = []
        for index in payload:
            if isinstance(index, bool) or not isinstance(index, int) or \
                    not 0 <= index < len(built):
                raise WireError(f"bad operand index in {node!r}")
            operands.append(built[index])
        built.append(Expr(op, width, tuple(operands)))
    return built[-1]


def _canonical_json(value: object) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _sorted_wires(constraints: Iterable[Expr]) -> List[list]:
    """Constraint wire forms in a canonical (serialization-independent)
    order: sorted by their canonical JSON text."""
    return sorted((expr_to_wire(c) for c in constraints),
                  key=_canonical_json)


def group_fingerprint(constraints: Iterable[Expr]) -> str:
    """SHA-256 fingerprint of a constraint group, independent of
    constraint order, interning history, and process hash seed."""
    text = "\n".join(_canonical_json(wire)
                     for wire in _sorted_wires(constraints))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _model_from_wire(payload: object) -> Dict[str, int]:
    if not isinstance(payload, dict):
        raise WireError(f"model must be an object, got {payload!r}")
    model: Dict[str, int] = {}
    for name, value in payload.items():
        if not isinstance(name, str) or isinstance(value, bool) or \
                not isinstance(value, int):
            raise WireError(f"bad model binding {name!r}: {value!r}")
        model[name] = value
    return model


def _record_checksum(record: Dict[str, object]) -> str:
    """Integrity checksum of a record body (everything but ``sum``)."""
    body = {key: value for key, value in record.items() if key != "sum"}
    return hashlib.sha256(
        _canonical_json(body).encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------- verification memos

def verification_fingerprint(module: Module, request: VerificationRequest,
                             backend_spec: str) -> str:
    """The memo key of one verification run: the post-pipeline IR's
    printed form plus every request/backend knob that can change the
    outcome.  Two submissions with identical optimized IR, request, and
    backend configuration are the same verification."""
    parts = [
        backend_spec,
        request.entry,
        str(request.symbolic_input_bytes),
        repr(request.timeout_seconds),
        str(request.max_instructions),
        print_module(module),
    ]
    return hashlib.sha256("\x00".join(parts).encode("utf-8")).hexdigest()


def relcheck_fingerprint(module_a: Module, module_b: Module,
                         spec: str) -> str:
    """The memo key of one translation-validation run: both modules'
    printed IR plus the relcheck configuration's canonical spec
    (:meth:`repro.relcheck.RelcheckConfig.spec`).  The leading tag keeps
    the key space disjoint from verification memos."""
    parts = ["relcheck", spec, print_module(module_a), print_module(module_b)]
    return hashlib.sha256("\x00".join(parts).encode("utf-8")).hexdigest()


def outcome_to_memo(outcome: VerificationOutcome) -> Dict[str, object]:
    """The JSON-ready memo payload of a completed verification."""
    payload: Dict[str, object] = {
        "backend": outcome.backend,
        "seconds": outcome.seconds,
        "instructions": outcome.instructions,
        "paths": outcome.paths,
        "errors": outcome.errors,
        "timed_out": outcome.timed_out,
        "engine_errors": outcome.engine_errors,
        "termination_reason": outcome.termination_reason,
        "return_value": outcome.return_value,
        "bug_signatures": sorted(list(signature)
                                 for signature in outcome.bug_signatures),
        "solver_stats": dict(outcome.solver_stats),
    }
    detail = outcome.detail
    if isinstance(detail, SymexReport):
        payload["report"] = {
            "stats": {field.name: getattr(detail.stats, field.name)
                      for field in fields(detail.stats)},
            "paths": [[record.status.value,
                       record.constraint_count,
                       record.instructions,
                       None if record.test_input is None
                       else record.test_input.hex(),
                       record.return_value]
                      for record in detail.paths],
            "bugs": [[bug.kind.value, bug.message, bug.function, bug.block,
                      None if bug.test_input is None
                      else bug.test_input.hex()]
                     for bug in detail.bugs],
            "diagnostics": list(detail.diagnostics),
        }
    return payload


def memo_to_outcome(payload: Dict[str, object],
                    backend: str) -> VerificationOutcome:
    """Rebuild a full :class:`VerificationOutcome` (including a genuine
    :class:`SymexReport` detail when one was memoized) from a memo
    payload, with ``provenance="memo-hit"`` and ``seconds=0.0`` — the memo
    hit itself costs no verification time.  Raises :class:`WireError` if
    the payload does not reconstruct; callers treat that as a miss."""
    try:
        detail = None
        report = payload.get("report")
        if isinstance(report, dict):
            stat_names = {field.name for field in fields(SymexStats)}
            stats = SymexStats(**{key: value
                                  for key, value in report["stats"].items()
                                  if key in stat_names})
            solver_names = {field.name for field in fields(SolverStats)}
            solver_stats = SolverStats(
                **{key: value
                   for key, value in payload["solver_stats"].items()
                   if key in solver_names})
            paths = [PathRecord(
                state_id=index,
                status=StateStatus(status),
                constraint_count=constraint_count,
                instructions=instructions,
                test_input=None if test_input is None
                else bytes.fromhex(test_input),
                return_value=return_value)
                for index, (status, constraint_count, instructions,
                            test_input, return_value)
                in enumerate(report["paths"])]
            bugs = [BugReport(
                kind=ErrorKind(kind),
                message=message,
                function=function,
                block=block,
                test_input=None if test_input is None
                else bytes.fromhex(test_input))
                for kind, message, function, block, test_input
                in report["bugs"]]
            detail = SymexReport(stats=stats, solver_stats=solver_stats,
                                 paths=paths, bugs=bugs,
                                 diagnostics=list(
                                     report.get("diagnostics", [])))
        return VerificationOutcome(
            backend=backend,
            seconds=0.0,
            instructions=int(payload["instructions"]),
            paths=int(payload["paths"]),
            errors=int(payload["errors"]),
            timed_out=bool(payload["timed_out"]),
            engine_errors=int(payload.get("engine_errors", 0)),
            termination_reason=str(payload.get("termination_reason", "")),
            bug_signatures=frozenset(
                tuple(signature)
                for signature in payload["bug_signatures"]),
            return_value=payload.get("return_value"),
            solver_stats=dict(payload["solver_stats"]),
            detail=detail,
            provenance="memo-hit",
        )
    except WireError:
        raise
    except Exception as exc:
        raise WireError(f"memo payload does not reconstruct: {exc}") from exc


# ------------------------------------------------------------------- store

class SolverKnowledgeStore:
    """The persistent knowledge store: solver cache snapshots plus
    verification memos, living in one JSON-lines file.

    ``path=None`` makes a memory-only store (the service without
    ``--store``): the same API, with :meth:`load`/:meth:`save` as no-ops.
    All mutating methods are thread-safe — the service calls them from
    worker-pool threads."""

    def __init__(self, path: Optional[object] = None) -> None:
        self.path = None if path is None else Path(path)
        self._lock = threading.Lock()
        #: Why the last load came up cold ("" = it didn't).
        self.load_error = ""
        #: Where a corrupt store file was moved aside ("" = never).  The
        #: quarantined original is kept for post-mortems; the service
        #: continues cold instead of crash-looping on the same bad bytes.
        self.quarantined = ""
        self._reset()

    def _reset(self) -> None:
        self._groups: Dict[str, dict] = {}
        self._sat_sets: Dict[str, dict] = {}
        self._unsat_sets: Dict[str, dict] = {}
        self._canonical_models: Dict[str, dict] = {}
        self._memos: Dict[str, dict] = {}

    def __len__(self) -> int:
        return (len(self._groups) + len(self._sat_sets)
                + len(self._unsat_sets) + len(self._canonical_models)
                + len(self._memos))

    @property
    def memo_count(self) -> int:
        return len(self._memos)

    # ------------------------------------------------------------- loading
    def load(self) -> bool:
        """Read the store file.  Returns True when warm knowledge was
        loaded; every failure mode (missing file, bad version, truncation,
        checksum mismatch, malformed content) leaves the store empty and
        the reason in :attr:`load_error` — never an exception."""
        with self._lock:
            self._reset()
            self.load_error = ""
            if self.path is None:
                return False
            if _STORE_LOAD.armed:
                try:
                    _STORE_LOAD.fire()
                except StoreError as exc:
                    # An injected read failure: degrade to a cold start,
                    # file untouched (it is not corrupt, just unreadable).
                    self.load_error = f"fault: {exc}"
                    return False
            try:
                text = self.path.read_text(encoding="utf-8")
            except FileNotFoundError:
                self.load_error = "missing"
                return False
            except (OSError, UnicodeDecodeError) as exc:
                self.load_error = f"unreadable: {exc}"
                return False
            try:
                self._parse(text)
            except Exception as exc:
                self._reset()
                self.load_error = f"corrupt: {exc}"
                self.quarantined = self._quarantine()
                return False
            return len(self) > 0

    def _quarantine(self) -> str:
        """Move a corrupt store file aside to ``<path>.corrupt-<n>`` so
        the next save starts clean instead of re-reading (and re-merging
        with) bad bytes forever.  Returns the quarantine path, or ``""``
        when the rename itself failed (read-only filesystem, races) — the
        store still degrades to cold either way."""
        for n in range(1, 1000):
            target = Path(f"{self.path}.corrupt-{n}")
            if target.exists():
                continue
            try:
                os.replace(self.path, target)
            except OSError:
                return ""
            return str(target)
        return ""

    def _parse(self, text: str) -> None:
        lines = text.splitlines()
        if not lines:
            raise StoreFormatError("empty file")
        header = json.loads(lines[0])
        if not isinstance(header, dict) or \
                header.get("format") != FORMAT_NAME:
            raise StoreFormatError("not a solver store")
        if header.get("version") != FORMAT_VERSION:
            raise StoreFormatError(
                f"version {header.get('version')!r} "
                f"(this build reads {FORMAT_VERSION})")
        if len(lines) < 2:
            raise StoreFormatError("truncated: missing footer")
        footer = json.loads(lines[-1])
        if not isinstance(footer, dict) or footer.get("kind") != "end":
            raise StoreFormatError("truncated: no end marker")
        records = lines[1:-1]
        if footer.get("records") != len(records):
            raise StoreFormatError(
                f"truncated: footer expects {footer.get('records')} "
                f"records, found {len(records)}")
        tables = {"group": self._groups, "sat_set": self._sat_sets,
                  "unsat_core": self._unsat_sets,
                  "canonical_model": self._canonical_models,
                  "memo": self._memos}
        for line in records:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise StoreFormatError(f"record is not an object: {line!r}")
            if record.get("sum") != _record_checksum(record):
                raise StoreFormatError("record checksum mismatch")
            kind = record.pop("kind", None)
            record.pop("sum", None)
            key = record.pop("key", None)
            table = tables.get(kind)
            if table is None or not isinstance(key, str):
                raise StoreFormatError(f"malformed record kind={kind!r}")
            table[key] = record

    # -------------------------------------------------------------- saving
    def save(self) -> None:
        """Atomically persist the store (read-merge-replace).

        The current file is re-read first and any records it has that this
        store lacks are merged in (this store's entries win on key
        collisions), so two concurrent writers union their knowledge
        instead of the last one clobbering the first.  The write itself
        goes through a same-directory temp file and ``os.replace``:
        readers only ever see a complete old or complete new file."""
        if self.path is None:
            return
        with self._lock:
            current = SolverKnowledgeStore(self.path)
            current.load()
            for ours, theirs in (
                    (self._groups, current._groups),
                    (self._sat_sets, current._sat_sets),
                    (self._unsat_sets, current._unsat_sets),
                    (self._canonical_models, current._canonical_models),
                    (self._memos, current._memos)):
                for key, record in theirs.items():
                    ours.setdefault(key, record)
            lines = [_canonical_json({"format": FORMAT_NAME,
                                      "version": FORMAT_VERSION})]
            count = 0
            for kind, table in (("group", self._groups),
                                ("sat_set", self._sat_sets),
                                ("unsat_core", self._unsat_sets),
                                ("canonical_model", self._canonical_models),
                                ("memo", self._memos)):
                for key in sorted(table):
                    record = dict(table[key])
                    record["kind"] = kind
                    record["key"] = key
                    record["sum"] = _record_checksum(record)
                    lines.append(_canonical_json(record))
                    count += 1
            lines.append(_canonical_json({"kind": "end", "records": count}))
            payload = "\n".join(lines) + "\n"
            try:
                directory = self.path.parent
                directory.mkdir(parents=True, exist_ok=True)
                fd, tmp_name = tempfile.mkstemp(
                    dir=str(directory), prefix=self.path.name + ".",
                    suffix=".tmp")
            except OSError as exc:
                raise StoreError(f"store save failed: {exc}",
                                 site="store.write") from exc
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                if _STORE_WRITE.armed:
                    # The torn-write window: the temp file is complete but
                    # the rename has not happened.  An injected kill here
                    # must leave the published file byte-identical.
                    _STORE_WRITE.fire()
                os.replace(tmp_name, self.path)
            except BaseException as exc:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                if isinstance(exc, OSError):
                    raise StoreError(f"store save failed: {exc}",
                                     site="store.write") from exc
                raise

    # ------------------------------------------------- cache <-> store
    def prime(self, caches: SharedSolverCaches) -> int:
        """Inject every stored solver fact into ``caches`` (tagged so hits
        count as ``SolverStats.store_hits``).  Returns the number of
        entries absorbed.  A record whose constraints no longer decode is
        skipped, never fatal."""
        state: Dict[str, list] = {"groups": [], "sat_sets": [],
                                  "unsat_sets": [], "canonical_models": []}
        with self._lock:
            group_items = list(self._groups.items())
            sat_items = list(self._sat_sets.items())
            unsat_items = list(self._unsat_sets.items())
            canonical_items = list(self._canonical_models.items())
        for _key, record in group_items:
            try:
                constraints = frozenset(expr_from_wire(wire)
                                        for wire in record["constraints"])
                model = record["model"]
                result = SolverResult(
                    bool(record["satisfiable"]),
                    None if model is None else _model_from_wire(model))
            except (WireError, KeyError, TypeError, RecursionError):
                continue
            state["groups"].append((constraints, result))
        for _key, record in sat_items:
            try:
                elements = tuple(expr_from_wire(wire)
                                 for wire in record["constraints"])
                model = _model_from_wire(record["model"])
            except (WireError, KeyError, TypeError, RecursionError):
                continue
            state["sat_sets"].append((elements, model))
        for _key, record in unsat_items:
            try:
                elements = tuple(expr_from_wire(wire)
                                 for wire in record["constraints"])
            except (WireError, KeyError, TypeError, RecursionError):
                continue
            state["unsat_sets"].append(elements)
        for _key, record in canonical_items:
            try:
                constraints = frozenset(expr_from_wire(wire)
                                        for wire in record["constraints"])
                model = _model_from_wire(record["model"])
            except (WireError, KeyError, TypeError, RecursionError):
                continue
            state["canonical_models"].append((constraints, model))
        return caches.absorb_state(state, from_store=True)

    def absorb(self, caches: SharedSolverCaches) -> int:
        """Fold everything ``caches`` learned into the store (existing
        entries win — knowledge, once recorded, is stable).  Returns the
        number of new records."""
        state = caches.export_state()
        added = 0
        with self._lock:
            for key, result in state["groups"]:
                fingerprint = group_fingerprint(key)
                if fingerprint not in self._groups:
                    self._groups[fingerprint] = {
                        "constraints": _sorted_wires(key),
                        "satisfiable": result.satisfiable,
                        "model": None if result.model is None
                        else dict(result.model),
                    }
                    added += 1
            for elements, model in state["sat_sets"]:
                fingerprint = group_fingerprint(elements)
                if fingerprint not in self._sat_sets:
                    self._sat_sets[fingerprint] = {
                        "constraints": _sorted_wires(elements),
                        "model": dict(model),
                    }
                    added += 1
            for elements in state["unsat_sets"]:
                fingerprint = group_fingerprint(elements)
                if fingerprint not in self._unsat_sets:
                    self._unsat_sets[fingerprint] = {
                        "constraints": _sorted_wires(elements),
                    }
                    added += 1
            for key, model in state["canonical_models"]:
                fingerprint = group_fingerprint(key)
                if fingerprint not in self._canonical_models:
                    self._canonical_models[fingerprint] = {
                        "constraints": _sorted_wires(key),
                        "model": dict(model),
                    }
                    added += 1
        return added

    # ---------------------------------------------------------------- memos
    def memo_lookup(self, key: str) -> Optional[Dict[str, object]]:
        with self._lock:
            return self._memos.get(key)

    def memo_record(self, key: str, payload: Dict[str, object]) -> None:
        with self._lock:
            self._memos[key] = payload


__all__ = [
    "FORMAT_NAME", "FORMAT_VERSION", "SolverKnowledgeStore",
    "StoreFormatError", "WireError", "expr_from_wire", "expr_to_wire",
    "group_fingerprint", "memo_to_outcome", "outcome_to_memo",
    "relcheck_fingerprint", "verification_fingerprint",
]
