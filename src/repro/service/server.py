"""The verification service's asyncio front door.

One :class:`VerificationServer` listens on a local unix-domain socket and
speaks a JSON-line protocol (one request object per line, one response
object per line — see ``docs/service.md``).  Verification jobs flow
through the same plumbing every other driver uses —
:class:`~repro.pipelines.session.CompilerSession` for compilation,
:func:`~repro.verification.make_backend` for the engine — with three
service-level layers on top:

* **In-flight dedupe.**  Jobs are keyed by a content hash of their
  resolved source + request + backend configuration.  A job submitted
  while an identical one is running does not start a second verification;
  it awaits the running one's result (and is marked ``"deduped": true``).
* **Verification memo.**  Completed jobs are recorded in the
  service's :class:`~repro.service.store.SolverKnowledgeStore` keyed by
  post-pipeline IR fingerprint; resubmitting an unchanged function is
  answered from the memo without running symex
  (``"provenance": "memo-hit"``).
* **Shared, store-primed solver caches.**  All jobs solve into one
  lock-striped :class:`~repro.symex.solver.SharedSolverCaches`, primed
  from the store at startup; a job whose constraint groups are answered
  by primed entries reports ``"provenance": "warm-store"``.  Everything
  learned is absorbed back into the store and saved atomically.

Concurrency model: the asyncio loop only parses requests and awaits; the
blocking work (compile + verify) runs on a thread pool.  Compiles are
serialized behind one lock (the session's front-end cache is not
thread-safe; compiles are the cheap part), verifications run in parallel
across the pool — the solver caches are built for exactly that.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

from ..faults import (
    DeadlineExceeded, EngineError, ProtocolError, ReproError, StoreError,
    site as _fault_site,
)
from ..pipelines import CompileOptions, CompilerSession, parse_opt_level
from ..symex.solver import SharedSolverCaches
from ..verification import VerificationRequest, make_backend
from ..workloads import get_workload
from .store import (
    SolverKnowledgeStore, WireError, memo_to_outcome, outcome_to_memo,
    verification_fingerprint,
)

#: Stripes of the service's shared solver caches: enough that a handful of
#: concurrent verifications rarely collide on a stripe lock.
CACHE_STRIPES = 8

#: Seconds past a job's cooperative deadline before the server stops
#: waiting and answers ``error_kind="deadline"``.  The engine's own
#: budget checks normally fire first; the backstop only triggers when a
#: job wedges (the failure the deadline exists for).
DEADLINE_GRACE = 5.0

#: Fault site wrapping request dispatch (``docs/robustness.md``): proves
#: a fault inside the handler produces one structured error response and
#: leaves the server answering.
_SERVER_HANDLE = _fault_site("server.handle", EngineError)


def _field_float(request: Dict[str, object], name: str, default: float,
                 minimum: float = 0.0) -> float:
    """A finite float request field (numeric strings accepted), or a
    :class:`ProtocolError` naming the offending field."""
    value = request.get(name, default)
    if isinstance(value, str):
        try:
            value = float(value)
        except ValueError:
            raise ProtocolError(
                f"'{name}' must be a number, got {value!r}") from None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"'{name}' must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise ProtocolError(f"'{name}' must be finite, got {value!r}")
    if value < minimum:
        raise ProtocolError(
            f"'{name}' must be >= {minimum:g}, got {value:g}")
    return value


def _field_int(request: Dict[str, object], name: str, default: int,
               minimum: int = 0) -> int:
    """An integer request field (digit strings accepted), or a
    :class:`ProtocolError` naming the offending field."""
    value = request.get(name, default)
    if isinstance(value, str):
        try:
            value = int(value, 10)
        except ValueError:
            raise ProtocolError(
                f"'{name}' must be an integer, got {value!r}") from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"'{name}' must be an integer, got {value!r}")
    if value < minimum:
        raise ProtocolError(f"'{name}' must be >= {minimum}, got {value}")
    return value


class VerificationServer:
    """The async front door (see module docstring).

    Parameters
    ----------
    socket_path:
        Unix-domain socket to listen on (created; a stale file is
        replaced).
    store_path:
        Knowledge-store file.  ``None`` runs memory-only: memoization and
        cache sharing still work within the server's lifetime, nothing
        persists.
    backend:
        Backend spec for every job (default ``"symex"``).  The server
        injects its shared caches into backends that accept them.
    pool_size:
        Worker threads verifying concurrently.
    save_every:
        Persist the store after every N completed (non-memoized) jobs;
        the store is always saved on shutdown.  0 = only at shutdown.
    max_pending:
        Backpressure bound: distinct jobs in flight at once (duplicates
        ride an existing job for free).  A submission past the bound is
        rejected with ``error_kind="backpressure"`` and a ``retry_after``
        hint instead of queueing without limit.  0 = ``4 * pool_size + 4``.
    drain_seconds:
        On shutdown, how long to wait for in-flight jobs to finish (and
        their clients to get answers) before tearing the pool down.
    """

    def __init__(self, socket_path: object, store_path: object = None,
                 backend: str = "symex", pool_size: int = 2,
                 save_every: int = 1, max_pending: int = 0,
                 drain_seconds: float = 30.0) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self.socket_path = str(socket_path)
        self.backend_spec = backend
        self.pool_size = pool_size
        self.save_every = save_every
        self.max_pending = max_pending or 4 * pool_size + 4
        self.drain_seconds = drain_seconds
        self.store = SolverKnowledgeStore(store_path)
        self.caches = SharedSolverCaches(num_stripes=CACHE_STRIPES,
                                         locked=True)
        #: One backend instance serves every job (verify() is stateless);
        #: backends that take injected caches get the shared set.
        self.backend = make_backend(backend, caches=self.caches)
        self.session = CompilerSession()
        self.primed_entries = 0
        self.stats: Dict[str, int] = {
            "jobs_completed": 0, "jobs_failed": 0, "jobs_deduped": 0,
            "jobs_rejected": 0, "jobs_deadline_expired": 0,
            "memo_hits": 0, "warm_store": 0, "cold": 0, "saves": 0,
            "saves_failed": 0,
        }
        self._session_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._save_lock = threading.Lock()
        self._jobs_since_save = 0
        self._inflight: Dict[str, "asyncio.Future"] = {}
        #: Distinct jobs currently running (event-loop-thread only).
        self._active_jobs = 0
        #: Runner tasks, referenced so the loop cannot drop them mid-job.
        self._runners: set = set()
        self._draining = False
        self._pool: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown: Optional[asyncio.Event] = None

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Load + prime the store and start listening."""
        self._shutdown = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.pool_size, thread_name_prefix="verify")
        self.store.load()
        self.primed_entries = self.store.prime(self.caches)
        directory = os.path.dirname(self.socket_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        try:
            os.unlink(self.socket_path)
        except FileNotFoundError:
            pass
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path)

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request arrives, then clean up:
        stop accepting, drain in-flight jobs (bounded by
        ``drain_seconds``), save the store, remove the socket."""
        if self._server is None:
            await self.start()
        try:
            await self._shutdown.wait()
        finally:
            self._draining = True
            self._server.close()
            await self._server.wait_closed()
            drain_until = time.monotonic() + self.drain_seconds
            while self._active_jobs > 0 and time.monotonic() < drain_until:
                await asyncio.sleep(0.05)
            self._pool.shutdown(wait=True)
            self._save_store()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    def _save_store(self) -> None:
        """Persist the store, degrading a failed save to a counted stat —
        persistence is best-effort, shutdown and job completion are not
        allowed to crash on it."""
        try:
            self.store.save()
        except StoreError:
            with self._stats_lock:
                self.stats["saves_failed"] += 1
            return
        with self._stats_lock:
            self.stats["saves"] += 1

    def run(self) -> None:
        """Blocking entry point: serve until shutdown (the CLI's ``serve``
        subcommand, and test servers on a background thread)."""
        asyncio.run(self.serve_until_shutdown())

    # ------------------------------------------------------------- protocol
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    try:
                        request = json.loads(line)
                    except ValueError as exc:
                        raise ProtocolError(
                            f"request is not valid JSON: {exc}") from None
                    response = await self._dispatch(request)
                except asyncio.CancelledError:
                    raise
                except ReproError as exc:
                    response = self._error_response(exc)
                    with self._stats_lock:
                        self.stats["jobs_failed"] += 1
                except Exception as exc:
                    response = {"ok": False, "error": str(exc)}
                    with self._stats_lock:
                        self.stats["jobs_failed"] += 1
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
        except asyncio.CancelledError:
            pass  # server shutting down mid-read: just close the connection
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError):
                pass

    @staticmethod
    def _error_response(exc: ReproError) -> Dict[str, object]:
        """The structured ``ok: false`` reply for a taxonomy error."""
        response: Dict[str, object] = {
            "ok": False, "error": str(exc),
            "error_kind": exc.kind, "retryable": exc.retryable,
        }
        if exc.site:
            response["site"] = exc.site
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            response["retry_after"] = retry_after
        return response

    async def _dispatch(self, request: object) -> Dict[str, object]:
        if _SERVER_HANDLE.armed:
            _SERVER_HANDLE.fire()
        if not isinstance(request, dict):
            raise ProtocolError("request must be a JSON object")
        op = request.get("op", "verify")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            with self._stats_lock:
                snapshot = dict(self.stats)
            snapshot.update(ok=True, op="stats",
                            active_jobs=self._active_jobs,
                            max_pending=self.max_pending,
                            primed_entries=self.primed_entries,
                            store_records=len(self.store),
                            memo_count=self.store.memo_count,
                            backend=self.backend.describe(),
                            pool_size=self.pool_size)
            return snapshot
        if op == "shutdown":
            self._shutdown.set()
            return {"ok": True, "op": "shutdown"}
        if op == "verify":
            return await self._submit(request)
        raise ProtocolError(f"unknown op {op!r}")

    # ----------------------------------------------------------- job intake
    def _resolve_job(self, request: Dict[str, object]) -> Dict[str, object]:
        """Normalize a verify request: resolve the workload to source text
        and fill every default, so the dedupe key hashes semantics, not
        spelling.  Every malformed field raises :class:`ProtocolError`
        (answered as a structured ``error_kind="protocol"`` response) —
        client input must never take the server down."""
        source = request.get("source")
        label = request.get("workload")
        default_bytes = 4
        if label is not None:
            if source is not None:
                raise ProtocolError("give 'workload' or 'source', not both")
            try:
                workload = get_workload(str(label))
            except (KeyError, ValueError) as exc:
                raise ProtocolError(str(exc)) from None
            source = workload.source
            default_bytes = workload.default_input_bytes
        elif source is None:
            raise ProtocolError("a verify job needs 'workload' or 'source'")
        elif not isinstance(source, str):
            raise ProtocolError("'source' must be MiniC program text")
        try:
            level = parse_opt_level(str(request.get("level", "-OVERIFY")))
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        timeout = _field_float(request, "timeout", 60.0)
        deadline = None
        if request.get("deadline") is not None:
            deadline = _field_float(request, "deadline", 0.0)
            if deadline <= 0.0:
                raise ProtocolError(
                    f"'deadline' must be > 0, got {deadline:g}")
            # Cooperative leg: the engine's own wall-clock budget is
            # capped to the deadline, so a healthy job terminates itself
            # (termination_reason="timeout") well before the backstop.
            timeout = min(timeout, deadline)
        verification = VerificationRequest(
            symbolic_input_bytes=_field_int(request, "input_bytes",
                                            default_bytes, minimum=1),
            timeout_seconds=timeout,
            max_instructions=_field_int(request, "max_instructions",
                                        5_000_000, minimum=1),
            entry=str(request.get("entry", "main")),
        )
        return {"source": source, "label": label or "(inline source)",
                "level": level, "request": verification,
                "deadline": deadline}

    def _job_key(self, job: Dict[str, object]) -> str:
        request = job["request"]
        identity = json.dumps({
            "source": job["source"],
            "level": str(job["level"]),
            "input_bytes": request.symbolic_input_bytes,
            "timeout": request.timeout_seconds,
            "max_instructions": request.max_instructions,
            "entry": request.entry,
            "backend": self.backend.describe(),
        }, sort_keys=True)
        return hashlib.sha256(identity.encode("utf-8")).hexdigest()

    async def _submit(self, request: Dict[str, object]) -> Dict[str, object]:
        if self._draining:
            return {"ok": False, "op": "verify",
                    "error": "server is shutting down",
                    "error_kind": "shutting-down", "retryable": False,
                    "id": request.get("id")}
        job = self._resolve_job(request)
        deadline = job.pop("deadline")
        key = self._job_key(job)
        existing = self._inflight.get(key)
        if existing is not None:
            with self._stats_lock:
                self.stats["jobs_deduped"] += 1
            response = await self._await_job(existing, deadline)
            response["deduped"] = True
            response["id"] = request.get("id")
            return response
        if self._active_jobs >= self.max_pending:
            # Backpressure: a *distinct* job needs a slot (duplicates ride
            # the existing job above).  Reject with a retry hint instead
            # of queueing unboundedly behind a saturated pool.
            with self._stats_lock:
                self.stats["jobs_rejected"] += 1
            return {"ok": False, "op": "verify",
                    "error": f"server at capacity "
                             f"({self._active_jobs} jobs in flight)",
                    "error_kind": "backpressure", "retryable": True,
                    "retry_after": 0.5, "id": request.get("id")}
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._inflight[key] = future
        self._active_jobs += 1
        runner = loop.create_task(self._run_and_publish(key, job, future))
        self._runners.add(runner)
        runner.add_done_callback(self._runners.discard)
        response = await self._await_job(future, deadline)
        response["id"] = request.get("id")
        return response

    async def _run_and_publish(self, key: str, job: Dict[str, object],
                               future: "asyncio.Future") -> None:
        """Run one distinct job on the pool and publish its response to
        every waiter.  Runs as its own task so a waiter abandoning the
        job (deadline, disconnect) never cancels the job itself — the
        result is still memoized and handed to other waiters."""
        try:
            try:
                response = await asyncio.get_running_loop().run_in_executor(
                    self._pool, self._run_job, job)
            except ReproError as exc:
                response = self._error_response(exc)
                response["op"] = "verify"
                with self._stats_lock:
                    self.stats["jobs_failed"] += 1
            except Exception as exc:
                response = {"ok": False, "op": "verify", "error": str(exc)}
                with self._stats_lock:
                    self.stats["jobs_failed"] += 1
            if not future.done():
                future.set_result(response)
        finally:
            self._inflight.pop(key, None)
            self._active_jobs -= 1
            if not future.done():
                future.cancel()

    async def _await_job(self, future: "asyncio.Future",
                         deadline: Optional[float]) -> Dict[str, object]:
        """Wait for a job's published response; with a deadline, stop
        waiting ``DEADLINE_GRACE`` past it and answer
        ``error_kind="deadline"`` (the job keeps running and is still
        memoized — only this waiter gives up)."""
        if deadline is None:
            return dict(await asyncio.shield(future))
        try:
            return dict(await asyncio.wait_for(asyncio.shield(future),
                                               deadline + DEADLINE_GRACE))
        except asyncio.TimeoutError:
            with self._stats_lock:
                self.stats["jobs_deadline_expired"] += 1
            response = self._error_response(DeadlineExceeded(
                f"job exceeded its {deadline:g}s deadline"))
            response["op"] = "verify"
            return response

    # ------------------------------------------------------------ job body
    def _run_job(self, job: Dict[str, object]) -> Dict[str, object]:
        started = time.perf_counter()
        with self._session_lock:
            result = self.session.compile(
                job["source"], options=CompileOptions(level=job["level"]))
        memo_key = verification_fingerprint(
            result.module, job["request"], self.backend.describe())
        outcome = None
        payload = self.store.memo_lookup(memo_key)
        if payload is not None:
            try:
                outcome = memo_to_outcome(payload,
                                          backend=self.backend.describe())
            except WireError:
                outcome = None  # damaged memo: re-verify
        if outcome is None:
            outcome = self.backend.verify(result.module, job["request"])
            self.store.memo_record(memo_key, outcome_to_memo(outcome))
            self.store.absorb(self.caches)
            self._maybe_save()
        with self._stats_lock:
            self.stats["jobs_completed"] += 1
            provenance_key = outcome.provenance.replace("-", "_") \
                .replace("memo_hit", "memo_hits")
            if provenance_key in self.stats:
                self.stats[provenance_key] += 1
        return {
            "ok": True,
            "op": "verify",
            "label": job["label"],
            "level": str(job["level"]),
            "backend": outcome.backend,
            "provenance": outcome.provenance,
            "deduped": False,
            "paths": outcome.paths,
            "errors": outcome.errors,
            "instructions": outcome.instructions,
            "timed_out": outcome.timed_out,
            "engine_errors": outcome.engine_errors,
            "termination_reason": outcome.termination_reason,
            "bug_signatures": sorted(list(signature) for signature
                                     in outcome.bug_signatures),
            "verify_seconds": outcome.seconds,
            "compile_seconds": result.compile_seconds,
            "wall_seconds": time.perf_counter() - started,
            "solver": dict(outcome.solver_stats),
        }

    def _maybe_save(self) -> None:
        if not self.save_every or self.store.path is None:
            return
        with self._save_lock:
            self._jobs_since_save += 1
            if self._jobs_since_save < self.save_every:
                return
            self._jobs_since_save = 0
        self._save_store()


def serve(socket_path: object, store_path: object = None,
          backend: str = "symex", pool_size: int = 2,
          save_every: int = 1, max_pending: int = 0,
          drain_seconds: float = 30.0) -> None:
    """Convenience blocking runner (``python -m repro serve``)."""
    VerificationServer(socket_path, store_path=store_path, backend=backend,
                       pool_size=pool_size, save_every=save_every,
                       max_pending=max_pending,
                       drain_seconds=drain_seconds).run()


__all__ = ["CACHE_STRIPES", "VerificationServer", "serve"]
