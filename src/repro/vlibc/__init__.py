"""repro.vlibc — the C library shipped with the compiler, in an
execution-optimized and a verification-optimized variant."""

from .sources import (
    CHECK_FAIL_DECLARATION, EXECUTION_LIBC, LIBC_FUNCTIONS, VERIFICATION_LIBC,
    libc_source,
)

__all__ = [
    "CHECK_FAIL_DECLARATION", "EXECUTION_LIBC", "LIBC_FUNCTIONS",
    "VERIFICATION_LIBC", "libc_source",
]
