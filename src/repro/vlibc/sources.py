"""MiniC sources for the C library, in two variants.

The paper (§3, Library-level changes): "As part of -OVERIFY, we are currently
developing a version of libC that is tailored to the needs of program
analysis ... Functions in this C library contain run-time checks to verify
their preconditions."

Two variants of the same API are provided:

* ``EXECUTION_LIBC`` — written the way a performance-oriented libc is
  written: early-exit loops, short-circuit conditionals, branchy character
  classification.  This is what -O0/-O2/-O3 builds link against.
* ``VERIFICATION_LIBC`` — branch-free character classification (bitwise
  instead of short-circuit operators), simplified loops, and explicit
  precondition checks that turn misuse into a crash
  (``__overify_check_fail``).  This is what -OVERIFY builds link against.

Both variants implement identical semantics for valid inputs; the test suite
checks them against each other and against Python's own semantics.
"""

from __future__ import annotations

#: Declaration of the failure hook; the interpreter and the symbolic executor
#: both treat a call to it as a program crash.
CHECK_FAIL_DECLARATION = "extern void __overify_check_fail(void);\n"


# ---------------------------------------------------------------------------
# Execution-oriented variant (branchy, early exits) — linked by -O0/-O2/-O3.
# ---------------------------------------------------------------------------
EXECUTION_LIBC = CHECK_FAIL_DECLARATION + r"""
/* --- character classification (branchy, like a table-free libc) --------- */

int isspace(int c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
           c == 11 || c == 12;
}

int isdigit(int c) {
    return c >= '0' && c <= '9';
}

int isupper(int c) {
    return c >= 'A' && c <= 'Z';
}

int islower(int c) {
    return c >= 'a' && c <= 'z';
}

int isalpha(int c) {
    return islower(c) || isupper(c);
}

int isalnum(int c) {
    return isalpha(c) || isdigit(c);
}

int isprint(int c) {
    return c >= ' ' && c <= '~';
}

int ispunct(int c) {
    return isprint(c) && !isalnum(c) && !(c == ' ');
}

int toupper(int c) {
    if (islower(c)) {
        return c - 'a' + 'A';
    }
    return c;
}

int tolower(int c) {
    if (isupper(c)) {
        return c - 'A' + 'a';
    }
    return c;
}

/* --- string functions ---------------------------------------------------- */

long strlen(unsigned char *s) {
    long n = 0;
    while (s[n]) {
        n = n + 1;
    }
    return n;
}

int strcmp(unsigned char *a, unsigned char *b) {
    long i = 0;
    while (a[i] && b[i]) {
        if (a[i] != b[i]) {
            if (a[i] < b[i]) { return -1; } else { return 1; }
        }
        i = i + 1;
    }
    if (a[i] == b[i]) { return 0; }
    if (a[i] < b[i]) { return -1; }
    return 1;
}

int strncmp(unsigned char *a, unsigned char *b, long n) {
    long i = 0;
    while (i < n) {
        if (a[i] != b[i]) {
            if (a[i] < b[i]) { return -1; } else { return 1; }
        }
        if (!a[i]) { return 0; }
        i = i + 1;
    }
    return 0;
}

unsigned char *strchr(unsigned char *s, int c) {
    long i = 0;
    while (s[i]) {
        if (s[i] == c) {
            return s + i;
        }
        i = i + 1;
    }
    if (c == 0) { return s + i; }
    return (unsigned char *)0;
}

unsigned char *strcpy(unsigned char *dst, unsigned char *src) {
    long i = 0;
    while (src[i]) {
        dst[i] = src[i];
        i = i + 1;
    }
    dst[i] = 0;
    return dst;
}

long strspn(unsigned char *s, unsigned char *accept) {
    long i = 0;
    while (s[i]) {
        if (!strchr(accept, s[i])) {
            return i;
        }
        i = i + 1;
    }
    return i;
}

long strcspn(unsigned char *s, unsigned char *reject) {
    long i = 0;
    while (s[i]) {
        if (strchr(reject, s[i])) {
            return i;
        }
        i = i + 1;
    }
    return i;
}

/* --- memory functions ----------------------------------------------------- */

void *memcpy(void *dst, void *src, long n) {
    unsigned char *d = (unsigned char *)dst;
    unsigned char *s = (unsigned char *)src;
    long i = 0;
    while (i < n) {
        d[i] = s[i];
        i = i + 1;
    }
    return dst;
}

void *memset(void *dst, int value, long n) {
    unsigned char *d = (unsigned char *)dst;
    long i = 0;
    while (i < n) {
        d[i] = (unsigned char)value;
        i = i + 1;
    }
    return dst;
}

int memcmp(void *a, void *b, long n) {
    unsigned char *x = (unsigned char *)a;
    unsigned char *y = (unsigned char *)b;
    long i = 0;
    while (i < n) {
        if (x[i] != y[i]) {
            if (x[i] < y[i]) { return -1; } else { return 1; }
        }
        i = i + 1;
    }
    return 0;
}

/* --- conversions ----------------------------------------------------------- */

int atoi(unsigned char *s) {
    int value = 0;
    int sign = 1;
    long i = 0;
    while (isspace(s[i])) {
        i = i + 1;
    }
    if (s[i] == '-') {
        sign = -1;
        i = i + 1;
    } else if (s[i] == '+') {
        i = i + 1;
    }
    while (isdigit(s[i])) {
        value = value * 10 + (s[i] - '0');
        i = i + 1;
    }
    return value * sign;
}

int abs(int x) {
    if (x < 0) {
        return -x;
    }
    return x;
}
"""


# ---------------------------------------------------------------------------
# Verification-oriented variant (branch-free classification, precondition
# checks) — linked by -OVERIFY builds.
# ---------------------------------------------------------------------------
VERIFICATION_LIBC = CHECK_FAIL_DECLARATION + r"""
/* --- character classification (branch-free: bitwise, no short-circuit) --- */

int isspace(int c) {
    return (c == ' ') | ((c >= '\t') & (c <= '\r'));
}

int isdigit(int c) {
    return (c >= '0') & (c <= '9');
}

int isupper(int c) {
    return (c >= 'A') & (c <= 'Z');
}

int islower(int c) {
    return (c >= 'a') & (c <= 'z');
}

int isalpha(int c) {
    return islower(c) | isupper(c);
}

int isalnum(int c) {
    return isalpha(c) | isdigit(c);
}

int isprint(int c) {
    return (c >= ' ') & (c <= '~');
}

int ispunct(int c) {
    return isprint(c) & (!isalnum(c)) & (c != ' ');
}

int toupper(int c) {
    int shift = islower(c) * 32;
    return c - shift;
}

int tolower(int c) {
    int shift = isupper(c) * 32;
    return c + shift;
}

/* --- string functions (precondition-checked, simple loops) ---------------- */

long strlen(unsigned char *s) {
    if (!s) { __overify_check_fail(); }
    long n = 0;
    while (s[n]) {
        n = n + 1;
    }
    return n;
}

int strcmp(unsigned char *a, unsigned char *b) {
    if (!a) { __overify_check_fail(); }
    if (!b) { __overify_check_fail(); }
    long i = 0;
    int result = 0;
    int done = 0;
    while (!done) {
        int ca = a[i];
        int cb = b[i];
        int differ = (ca != cb);
        int ended = ((ca == 0) | (cb == 0));
        result = (result != 0) * result +
                 (result == 0) * differ * ((ca < cb) * -1 + (ca > cb) * 1);
        done = differ | ended;
        i = i + 1;
    }
    return result;
}

int strncmp(unsigned char *a, unsigned char *b, long n) {
    if (!a) { __overify_check_fail(); }
    if (!b) { __overify_check_fail(); }
    long i = 0;
    int result = 0;
    while ((i < n) & (result == 0)) {
        int ca = a[i];
        int cb = b[i];
        result = (ca < cb) * -1 + (ca > cb) * 1;
        if (ca == 0) {
            return result;
        }
        i = i + 1;
    }
    return result;
}

unsigned char *strchr(unsigned char *s, int c) {
    if (!s) { __overify_check_fail(); }
    long i = 0;
    while ((s[i] != 0) & (s[i] != c)) {
        i = i + 1;
    }
    if (s[i] == c) {
        return s + i;
    }
    return (unsigned char *)0;
}

unsigned char *strcpy(unsigned char *dst, unsigned char *src) {
    if (!dst) { __overify_check_fail(); }
    if (!src) { __overify_check_fail(); }
    long i = 0;
    while (src[i]) {
        dst[i] = src[i];
        i = i + 1;
    }
    dst[i] = 0;
    return dst;
}

long strspn(unsigned char *s, unsigned char *accept) {
    if (!s) { __overify_check_fail(); }
    long i = 0;
    while ((s[i] != 0) & (strchr(accept, s[i]) != (unsigned char *)0)) {
        i = i + 1;
    }
    return i;
}

long strcspn(unsigned char *s, unsigned char *reject) {
    if (!s) { __overify_check_fail(); }
    long i = 0;
    while ((s[i] != 0) & (strchr(reject, s[i]) == (unsigned char *)0)) {
        i = i + 1;
    }
    return i;
}

/* --- memory functions ----------------------------------------------------- */

void *memcpy(void *dst, void *src, long n) {
    if (!dst) { __overify_check_fail(); }
    if (!src) { __overify_check_fail(); }
    unsigned char *d = (unsigned char *)dst;
    unsigned char *s = (unsigned char *)src;
    long i = 0;
    while (i < n) {
        d[i] = s[i];
        i = i + 1;
    }
    return dst;
}

void *memset(void *dst, int value, long n) {
    if (!dst) { __overify_check_fail(); }
    unsigned char *d = (unsigned char *)dst;
    long i = 0;
    while (i < n) {
        d[i] = (unsigned char)value;
        i = i + 1;
    }
    return dst;
}

int memcmp(void *a, void *b, long n) {
    if (!a) { __overify_check_fail(); }
    if (!b) { __overify_check_fail(); }
    unsigned char *x = (unsigned char *)a;
    unsigned char *y = (unsigned char *)b;
    long i = 0;
    int result = 0;
    while ((i < n) & (result == 0)) {
        result = (x[i] < y[i]) * -1 + (x[i] > y[i]) * 1;
        i = i + 1;
    }
    return result;
}

/* --- conversions ----------------------------------------------------------- */

int atoi(unsigned char *s) {
    if (!s) { __overify_check_fail(); }
    int value = 0;
    int sign = 1;
    long i = 0;
    while (isspace(s[i])) {
        i = i + 1;
    }
    sign = 1 - 2 * (s[i] == '-');
    i = i + (s[i] == '-') + (s[i] == '+');
    while (isdigit(s[i])) {
        value = value * 10 + (s[i] - '0');
        i = i + 1;
    }
    return value * sign;
}

int abs(int x) {
    int negative = (x < 0);
    return x * (1 - 2 * negative);
}
"""


def libc_source(verification_optimized: bool) -> str:
    """Return the MiniC source of the requested libc variant."""
    return VERIFICATION_LIBC if verification_optimized else EXECUTION_LIBC


#: The public API both variants provide (used by tests and by the harness to
#: check the two variants stay in sync).
LIBC_FUNCTIONS = [
    "isspace", "isdigit", "isupper", "islower", "isalpha", "isalnum",
    "isprint", "ispunct", "toupper", "tolower",
    "strlen", "strcmp", "strncmp", "strchr", "strcpy", "strspn", "strcspn",
    "memcpy", "memset", "memcmp",
    "atoi", "abs",
]
