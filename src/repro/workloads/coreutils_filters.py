"""Coreutils-like filter workloads (part 2): field/stream filters that lean
more heavily on the C library (strcmp/strchr/...)."""

from __future__ import annotations

from .registry import Workload, register
from .coreutils_text import OUTPUT_PREAMBLE


register(Workload(
    name="cut",
    description="Select the second ':'-separated field of each line (cut -d: -f2).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int field = 0;
    int copied = 0;
    int i = 0;
    while (input[i]) {
        if (input[i] == '\\n') {
            field = 0;
            emit('\\n');
        } else if (input[i] == ':') {
            field = field + 1;
        } else if (field == 1) {
            emit(input[i]);
            copied = copied + 1;
        }
        i = i + 1;
    }
    return copied;
}
""",
))


register(Workload(
    name="uniq",
    description="Drop consecutive duplicate characters (uniq on a stream of "
                "length-1 lines).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int count_mode = 0;             /* uniq -c */
    int start = 0;
    if (len >= 1 && input[0] == 'c') {
        count_mode = 1;
        start = 1;
    }
    int previous = -1;
    int repeats = 0;
    int kept = 0;
    int i = start;
    while (input[i]) {
        if (input[i] != previous) {
            if (count_mode) {
                emit('0' + repeats % 10);
                emit(' ');
            }
            emit(input[i]);
            kept = kept + 1;
            repeats = 0;
        } else {
            repeats = repeats + 1;
        }
        previous = input[i];
        i = i + 1;
    }
    return kept;
}
""",
))


register(Workload(
    name="grep",
    description="Count occurrences of a one-byte pattern (first input byte) "
                "in the remaining text (grep -c).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    if (len < 2) {
        return 0;
    }
    int invert = input[0] == 'v';   /* grep -v */
    unsigned char pattern = input[1];
    int matches = 0;
    int i = 2;
    while (input[i]) {
        int hit = input[i] == pattern;
        if (invert) {
            if (!hit) {
                matches = matches + 1;
            }
        } else {
            if (hit) {
                matches = matches + 1;
            }
        }
        i = i + 1;
    }
    return matches;
}
""",
))


register(Workload(
    name="comm",
    description="Compare the two halves of the input byte-by-byte (comm's "
                "three-way classification).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int half = len / 2;
    int only_first = 0;
    int only_second = 0;
    int both = 0;
    int i = 0;
    while (i < half) {
        unsigned char a = input[i];
        unsigned char b = input[half + i];
        if (a == b) {
            both = both + 1;
        } else if (a < b) {
            only_first = only_first + 1;
        } else {
            only_second = only_second + 1;
        }
        i = i + 1;
    }
    return only_first * 10000 + only_second * 100 + both;
}
""",
))


register(Workload(
    name="paste",
    description="Interleave the two halves of the input (paste -d'').",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int half = len / 2;
    int i = 0;
    while (i < half) {
        emit(input[i]);
        emit(input[half + i]);
        i = i + 1;
    }
    return out_pos;
}
""",
))


register(Workload(
    name="sort",
    description="Insertion-sort the input bytes (sort on single-character "
                "lines).",
    source=OUTPUT_PREAMBLE + """
unsigned char buffer[64];

int main(unsigned char *input, int len) {
    int count = 0;
    int i = 0;
    while (input[i] && count < 63) {
        buffer[count] = input[i];
        count = count + 1;
        i = i + 1;
    }
    int j = 1;
    while (j < count) {
        unsigned char key = buffer[j];
        int k = j - 1;
        while (k >= 0 && buffer[k] > key) {
            buffer[k + 1] = buffer[k];
            k = k - 1;
        }
        buffer[k + 1] = key;
        j = j + 1;
    }
    int inversions = 0;
    i = 0;
    while (i < count) {
        emit(buffer[i]);
        i = i + 1;
    }
    return count;
}
""",
))


register(Workload(
    name="join",
    description="Join two ':'-separated key lists on equal keys (join's "
                "matching loop).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int half = len / 2;
    int matches = 0;
    int i = 0;
    while (i < half) {
        unsigned char key = input[i];
        if (key == 0) {
            break;
        }
        int j = half;
        while (j < len && input[j]) {
            if (input[j] == key) {
                matches = matches + 1;
                emit(key);
            }
            j = j + 1;
        }
        i = i + 1;
    }
    return matches;
}
""",
))


register(Workload(
    name="strings",
    description="Extract printable runs of length >= 3 (strings).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int run = 0;
    int found = 0;
    int i = 0;
    while (i < len) {
        if (isprint(input[i])) {
            run = run + 1;
        } else {
            if (run >= 3) {
                found = found + 1;
            }
            run = 0;
        }
        i = i + 1;
    }
    if (run >= 3) {
        found = found + 1;
    }
    return found;
}
""",
))


register(Workload(
    name="tsort",
    description="Check whether the byte sequence is already topologically "
                "(non-decreasingly) ordered (tsort's cycle check analogue).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int ordered = 1;
    int breaks = 0;
    int i = 1;
    while (input[i]) {
        if (input[i - 1] > input[i]) {
            ordered = 0;
            breaks = breaks + 1;
        }
        i = i + 1;
    }
    return ordered * 1000 + breaks;
}
""",
))


register(Workload(
    name="shuf",
    description="Deterministic 'shuffle': xor-fold permutation index of the "
                "input bytes (shuf -i with a fixed seed).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int state = 7;
    int i = 0;
    while (input[i]) {
        state = (state * 31 + input[i]) % 251;
        emit((unsigned char)state);
        i = i + 1;
    }
    return state;
}
""",
))


register(Workload(
    name="split",
    description="Count how many 3-byte chunks the input splits into (split -b 3).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int chunks = 0;
    int in_chunk = 0;
    int i = 0;
    while (input[i]) {
        if (in_chunk == 0) {
            chunks = chunks + 1;
        }
        in_chunk = in_chunk + 1;
        if (in_chunk == 3) {
            in_chunk = 0;
        }
        i = i + 1;
    }
    return chunks;
}
""",
))
