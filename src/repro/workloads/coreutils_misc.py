"""Coreutils-like workloads (part 3): argument parsing, checksums, path
manipulation, plus two deliberately buggy utilities used by the bug-parity
experiments (the paper checks that every bug found at -O0/-O3 is also found
at -OSYMBEX)."""

from __future__ import annotations

from .registry import Workload, register
from .coreutils_text import OUTPUT_PREAMBLE


register(Workload(
    name="true",
    description="Always succeed (true).",
    source="""
int main(unsigned char *input, int len) {
    return 0;
}
""",
))


register(Workload(
    name="false",
    description="Always fail (false).",
    source="""
int main(unsigned char *input, int len) {
    return 1;
}
""",
))


register(Workload(
    name="yes",
    description="Emit the input string a bounded number of times (yes).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int repetitions = 3;
    int total = 0;
    int r = 0;
    while (r < repetitions) {
        int i = 0;
        while (input[i]) {
            emit(input[i]);
            total = total + 1;
            i = i + 1;
        }
        emit('\\n');
        r = r + 1;
    }
    return total;
}
""",
))


register(Workload(
    name="basename",
    description="Strip the directory part of a path (basename).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int last_slash = -1;
    int i = 0;
    while (input[i]) {
        if (input[i] == '/') {
            last_slash = i;
        }
        i = i + 1;
    }
    int j = last_slash + 1;
    while (input[j]) {
        emit(input[j]);
        j = j + 1;
    }
    return j - last_slash - 1;
}
""",
))


register(Workload(
    name="dirname",
    description="Extract the directory part of a path (dirname).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int last_slash = -1;
    int i = 0;
    while (input[i]) {
        if (input[i] == '/') {
            last_slash = i;
        }
        i = i + 1;
    }
    if (last_slash <= 0) {
        emit('.');
        return 1;
    }
    int j = 0;
    while (j < last_slash) {
        emit(input[j]);
        j = j + 1;
    }
    return last_slash;
}
""",
))


register(Workload(
    name="seq",
    description="Parse a bound from the input and sum 1..n (seq | paste -sd+).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int bound = atoi(input) % 16;
    if (bound < 0) {
        bound = -bound;
    }
    int total = 0;
    int i = 1;
    while (i <= bound) {
        total = total + i;
        i = i + 1;
    }
    return total;
}
""",
))


register(Workload(
    name="sum",
    description="BSD 16-bit rotating checksum (sum -r).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int checksum = 0;
    int i = 0;
    while (input[i]) {
        checksum = (checksum >> 1) + ((checksum & 1) << 15);
        checksum = checksum + input[i];
        checksum = checksum & 65535;
        i = i + 1;
    }
    return checksum;
}
""",
))


register(Workload(
    name="cksum",
    description="Simplified CRC-style checksum over the input (cksum).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    unsigned int crc = 0;
    int i = 0;
    while (input[i]) {
        crc = crc ^ (input[i] << 8);
        int bit = 0;
        while (bit < 8) {
            if (crc & 32768) {
                crc = (crc << 1) ^ 4129;
            } else {
                crc = crc << 1;
            }
            crc = crc & 65535;
            bit = bit + 1;
        }
        i = i + 1;
    }
    return (int)crc;
}
""",
))


register(Workload(
    name="od",
    description="Count bytes per octal-dump output class (od -c's classifier).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int printable = 0;
    int escapes = 0;
    int numeric = 0;
    int i = 0;
    while (i < len) {
        unsigned char c = input[i];
        if (c == '\\n' || c == '\\t' || c == 0) {
            escapes = escapes + 1;
        } else if (isprint(c)) {
            printable = printable + 1;
        } else {
            numeric = numeric + 1;
        }
        i = i + 1;
    }
    return printable * 10000 + escapes * 100 + numeric;
}
""",
))


register(Workload(
    name="echo_args",
    description="Parse '-n'/'-e' style flags before echoing (echo's option "
                "parser, exercising strcmp).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int no_newline = 0;
    int escapes = 0;
    int start = 0;
    if (len >= 2 && input[0] == '-') {
        if (input[1] == 'n') {
            no_newline = 1;
            start = 2;
        } else if (input[1] == 'e') {
            escapes = 1;
            start = 2;
        }
    }
    int i = start;
    while (input[i]) {
        if (escapes && input[i] == '\\\\' && input[i + 1] == 'n') {
            emit('\\n');
            i = i + 2;
        } else {
            emit(input[i]);
            i = i + 1;
        }
    }
    if (!no_newline) {
        emit('\\n');
    }
    return out_pos;
}
""",
))


register(Workload(
    name="test",
    description="Evaluate a tiny test(1) expression: '<digit> <op> <digit>' "
                "with ops '=', '<', '>'.",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    if (len < 3) {
        return 2;
    }
    if (!isdigit(input[0]) || !isdigit(input[2])) {
        return 2;
    }
    int a = input[0] - '0';
    int b = input[2] - '0';
    unsigned char op = input[1];
    if (op == '=') {
        return a == b ? 0 : 1;
    }
    if (op == '<') {
        return a < b ? 0 : 1;
    }
    if (op == '>') {
        return a > b ? 0 : 1;
    }
    return 2;
}
""",
))


register(Workload(
    name="expr",
    description="Evaluate '<digit><op><digit>' with +, -, *, / (expr). The "
                "division path can fail on a zero divisor, like real expr.",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    if (len < 3) {
        return 0;
    }
    if (!isdigit(input[0]) || !isdigit(input[2])) {
        return 0;
    }
    int a = input[0] - '0';
    int b = input[2] - '0';
    unsigned char op = input[1];
    if (op == '+') {
        return a + b;
    }
    if (op == '-') {
        return a - b;
    }
    if (op == '*') {
        return a * b;
    }
    if (op == '/') {
        return a / b;
    }
    return 0;
}
""",
))


register(Workload(
    name="factor",
    description="Trial-division factor count of a small parsed number (factor).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int n = atoi(input) % 64;
    if (n < 2) {
        return 0;
    }
    int factors = 0;
    int d = 2;
    while (d <= n) {
        while (n % d == 0) {
            factors = factors + 1;
            n = n / d;
        }
        d = d + 1;
    }
    return factors;
}
""",
))


register(Workload(
    name="printf",
    description="Interpret a tiny printf format: %d doubles, %c copies, %% "
                "escapes (printf).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int emitted = 0;
    int i = 0;
    while (input[i]) {
        if (input[i] == '%' && input[i + 1]) {
            unsigned char kind = input[i + 1];
            if (kind == 'd') {
                emit('0' + (len % 10));
            } else if (kind == 'c') {
                emit('?');
            } else if (kind == '%') {
                emit('%');
            } else {
                emit(kind);
            }
            emitted = emitted + 1;
            i = i + 2;
        } else {
            emit(input[i]);
            i = i + 1;
        }
    }
    return emitted;
}
""",
))


register(Workload(
    name="pathchk",
    description="Check a path for validity: empty components, length, "
                "forbidden characters (pathchk).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int component_length = 0;
    int errors = 0;
    int i = 0;
    while (input[i]) {
        if (input[i] == '/') {
            if (component_length == 0 && i > 0) {
                errors = errors + 1;
            }
            component_length = 0;
        } else {
            component_length = component_length + 1;
            if (component_length > 8) {
                errors = errors + 1;
            }
            if (!isprint(input[i])) {
                errors = errors + 1;
            }
        }
        i = i + 1;
    }
    return errors;
}
""",
))


# ---------------------------------------------------------------------------
# Deliberately buggy utilities for the bug-parity experiment (§4: "We
# verified that indeed all bugs discovered by KLEE with -O0 and -O3 are also
# found with -OSYMBEX").
# ---------------------------------------------------------------------------
register(Workload(
    name="buggy_index",
    description="Contains an out-of-bounds write when the first byte is 'X' "
                "(bug-parity experiment).",
    category="buggy",
    source="""
unsigned char table[4];

int main(unsigned char *input, int len) {
    int index = 0;
    if (len > 0 && input[0] == 'X') {
        index = 9;  /* out of bounds for table[4] */
    }
    table[index] = 1;
    return index;
}
""",
))


register(Workload(
    name="buggy_div",
    description="Divides by a value that is zero when the input starts with "
                "'0' (bug-parity experiment).",
    category="buggy",
    source="""
int main(unsigned char *input, int len) {
    if (len < 1 || !isdigit(input[0])) {
        return 0;
    }
    int divisor = input[0] - '0';
    return 100 / divisor;
}
""",
))
