"""Coreutils-like text-processing workloads (part 1).

These mirror the kind of utilities the paper's Figure 4 analyses: small
programs that walk their input byte by byte, branch on character classes,
and call into the C library.  Output is written to a global buffer (the
stand-in for stdout) and ``main`` returns a small summary value so that the
differential tests across optimization levels have something to compare.
"""

from __future__ import annotations

from .registry import Workload, register

#: Shared output preamble used by most utilities.  Output is modelled as a
#: rolling hash plus a length counter (rather than a byte buffer) so that the
#: "stdout" abstraction does not itself introduce symbolic-address stores —
#: the real Coreutils write through buffered stdio, which KLEE models
#: separately from the program under test.
OUTPUT_PREAMBLE = """
int out_hash = 0;
int out_pos = 0;

void emit(int c) {
    out_hash = (out_hash * 31 + (c & 255)) % 65521;
    out_pos = out_pos + 1;
}
"""


register(Workload(
    name="echo",
    description="Copy the input to the output buffer (echo).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int i = 0;
    while (input[i]) {
        emit(input[i]);
        i = i + 1;
    }
    emit('\\n');
    return i;
}
""",
))


register(Workload(
    name="cat",
    description="Copy input, optionally numbering lines; the first input "
                "byte selects -n (cat / cat -n).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int number_lines = 0;
    int start = 0;
    if (len >= 1 && input[0] == 'n') {
        number_lines = 1;
        start = 1;
    }
    int lines = 0;
    int at_start = 1;
    int i = start;
    while (input[i]) {
        if (number_lines && at_start) {
            emit('0' + (lines + 1) % 10);
            emit(' ');
        }
        at_start = 0;
        if (input[i] == '\\n') {
            lines = lines + 1;
            at_start = 1;
        }
        emit(input[i]);
        i = i + 1;
    }
    return lines;
}
""",
))


register(Workload(
    name="wc",
    description="Count lines, words and characters (the full wc utility).",
    sample_input=b"the quick brown fox\njumps over the lazy dog\n",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int lines = 0;
    int words = 0;
    int chars = 0;
    int in_word = 0;
    int i = 0;
    while (input[i]) {
        chars = chars + 1;
        if (input[i] == '\\n') {
            lines = lines + 1;
        }
        if (isspace(input[i])) {
            in_word = 0;
        } else {
            if (!in_word) {
                words = words + 1;
            }
            in_word = 1;
        }
        i = i + 1;
    }
    return lines * 10000 + words * 100 + chars;
}
""",
))


register(Workload(
    name="rev",
    description="Reverse each input line (rev).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int start = 0;
    int i = 0;
    while (1) {
        if (input[i] == '\\n' || input[i] == 0) {
            int j = i - 1;
            while (j >= start) {
                emit(input[j]);
                j = j - 1;
            }
            emit('\\n');
            start = i + 1;
        }
        if (input[i] == 0) {
            break;
        }
        i = i + 1;
    }
    return out_pos;
}
""",
))


register(Workload(
    name="nl",
    description="Number non-empty lines (nl -ba core behaviour).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int number = 1;
    int at_line_start = 1;
    int i = 0;
    while (input[i]) {
        if (at_line_start) {
            emit('0' + number % 10);
            emit('\\t');
            number = number + 1;
            at_line_start = 0;
        }
        emit(input[i]);
        if (input[i] == '\\n') {
            at_line_start = 1;
        }
        i = i + 1;
    }
    return number - 1;
}
""",
))


register(Workload(
    name="fold",
    description="Wrap lines at a fixed width (fold -w 4).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int column = 0;
    int i = 0;
    while (input[i]) {
        if (input[i] == '\\n') {
            column = 0;
            emit('\\n');
        } else {
            if (column >= 4) {
                emit('\\n');
                column = 0;
            }
            emit(input[i]);
            column = column + 1;
        }
        i = i + 1;
    }
    return out_pos;
}
""",
))


register(Workload(
    name="expand",
    description="Convert tabs to spaces with 4-column tab stops (expand).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int column = 0;
    int i = 0;
    while (input[i]) {
        if (input[i] == '\\t') {
            emit(' ');
            column = column + 1;
            while (column % 4 != 0) {
                emit(' ');
                column = column + 1;
            }
        } else {
            emit(input[i]);
            if (input[i] == '\\n') {
                column = 0;
            } else {
                column = column + 1;
            }
        }
        i = i + 1;
    }
    return out_pos;
}
""",
))


register(Workload(
    name="unexpand",
    description="Convert leading runs of spaces to tabs (unexpand).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int spaces = 0;
    int at_start = 1;
    int i = 0;
    while (input[i]) {
        if (at_start && input[i] == ' ') {
            spaces = spaces + 1;
            if (spaces == 4) {
                emit('\\t');
                spaces = 0;
            }
        } else {
            while (spaces > 0) {
                emit(' ');
                spaces = spaces - 1;
            }
            at_start = 0;
            emit(input[i]);
            if (input[i] == '\\n') {
                at_start = 1;
                spaces = 0;
            }
        }
        i = i + 1;
    }
    return out_pos;
}
""",
))


register(Workload(
    name="tr",
    description="Translate characters: first two input bytes are the from/to "
                "pair, the rest is the text (tr).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    if (len < 2) {
        return 0;
    }
    unsigned char from = input[0];
    unsigned char to = input[1];
    int translated = 0;
    int i = 2;
    while (input[i]) {
        if (input[i] == from) {
            emit(to);
            translated = translated + 1;
        } else {
            emit(input[i]);
        }
        i = i + 1;
    }
    return translated;
}
""",
))


register(Workload(
    name="head",
    description="Print the first N lines; N comes from the first input byte "
                "(head -n).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    if (len < 1) {
        return 0;
    }
    int limit = input[0] % 4 + 1;
    int lines = 0;
    int i = 1;
    while (input[i] && lines < limit) {
        emit(input[i]);
        if (input[i] == '\\n') {
            lines = lines + 1;
        }
        i = i + 1;
    }
    return lines;
}
""",
))


register(Workload(
    name="tail",
    description="Count trailing lines and output the last one (tail -n 1).",
    source=OUTPUT_PREAMBLE + """
int main(unsigned char *input, int len) {
    int last_start = 0;
    int lines = 0;
    int i = 0;
    while (input[i]) {
        if (input[i] == '\\n' && input[i + 1]) {
            last_start = i + 1;
            lines = lines + 1;
        }
        i = i + 1;
    }
    int j = last_start;
    while (input[j] && input[j] != '\\n') {
        emit(input[j]);
        j = j + 1;
    }
    return lines;
}
""",
))


register(Workload(
    name="tac",
    description="Output lines in reverse order (tac), using an index pass.",
    source=OUTPUT_PREAMBLE + """
int line_starts[32];

int main(unsigned char *input, int len) {
    int count = 0;
    line_starts[0] = 0;
    count = 1;
    int i = 0;
    while (input[i]) {
        if (input[i] == '\\n' && input[i + 1] && count < 32) {
            line_starts[count] = i + 1;
            count = count + 1;
        }
        i = i + 1;
    }
    int line = count - 1;
    while (line >= 0) {
        int j = line_starts[line];
        while (input[j] && input[j] != '\\n') {
            emit(input[j]);
            j = j + 1;
        }
        emit('\\n');
        line = line - 1;
    }
    return count;
}
""",
))
