"""repro.workloads — the programs the experiments analyse.

* :mod:`repro.workloads.wc` — the paper's Listing 1 motivating example.
* The ``coreutils_*`` modules register ~30 Coreutils-like utilities, the
  population for Table 3 and Figure 4.
* :mod:`repro.workloads.fuzz_regressions` — minimized reproducers for
  bugs found by the differential fuzzer (category ``fuzz``), replayed
  with ``python -m repro fuzz --check-workloads``.
"""

from .registry import Workload, all_workloads, get_workload, register, workload_names
from .wc import (
    WC_BRANCH_FREE, WC_PROGRAM, WC_PROGRAM_CONCRETE_ANY, WC_SOURCE,
    reference_word_count,
)

# Importing these modules populates the registry.
from . import coreutils_text  # noqa: F401  (registration side effect)
from . import coreutils_filters  # noqa: F401
from . import coreutils_misc  # noqa: F401
from . import fuzz_regressions  # noqa: F401

__all__ = [
    "Workload", "all_workloads", "get_workload", "register", "workload_names",
    "WC_BRANCH_FREE", "WC_PROGRAM", "WC_PROGRAM_CONCRETE_ANY", "WC_SOURCE",
    "reference_word_count",
]
