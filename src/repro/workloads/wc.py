"""The paper's motivating example: the word-count kernel of Listing 1.

``WC_SOURCE`` is a direct MiniC transcription of Listing 1; ``WC_PROGRAM``
wraps it in the entry point the experiment harness expects (the symbolic
input buffer plays the role of the string under test).  ``WC_BRANCH_FREE``
is the hand-written branch-free loop body of Listing 2, used by tests to
check that the -OVERIFY pipeline produces code of equivalent behaviour.
"""

from __future__ import annotations

#: Listing 1 — count words separated by whitespace or, if ``any`` is nonzero,
#: by non-alphabetic characters.
WC_SOURCE = """
int wc(unsigned char *str, int any) {
    int res = 0;
    int new_word = 1;
    for (unsigned char *p = str; *p; ++p) {
        if (isspace(*p) ||
            (any && !isalpha(*p))) {
            new_word = 1;
        } else {
            if (new_word) {
                ++res;
                new_word = 0;
            }
        }
    }
    return res;
}
"""

#: The full program analysed in Table 1: the input buffer is the string under
#: test and the ``any`` mode flag is itself symbolic (derived from the first
#: input byte), exactly as in the paper's experiment where both the string
#: and the mode are unconstrained.
WC_PROGRAM = WC_SOURCE + """
int main(unsigned char *input, int len) {
    int any = input[0] & 1;
    return wc(input + 1, any);
}
"""

#: A variant that exercises both modes with concrete flags (used by the
#: differential interpreter tests).
WC_PROGRAM_CONCRETE_ANY = WC_SOURCE + """
int main(unsigned char *input, int len) {
    return wc(input, 0) + wc(input, 1);
}
"""

#: Listing 2 — the branch-free version of the loop body that -OVERIFY is
#: expected to produce (transcribed as a whole function for testing).
WC_BRANCH_FREE = """
int wc_branch_free(unsigned char *str, int any) {
    int res = 0;
    int new_word = 1;
    for (unsigned char *p = str; *p; ++p) {
        int sp = isspace(*p) != 0;
        sp = sp | ((any != 0) & (!isalpha(*p)));
        res = res + (~sp & new_word);
        new_word = sp;
    }
    return res;
}
"""


def reference_word_count(text: bytes, any_separator: bool) -> int:
    """Python reference implementation of Listing 1 (used as an oracle)."""
    import string
    result = 0
    new_word = True
    for byte in text:
        if byte == 0:
            break
        ch = chr(byte)
        is_space = ch in " \t\n\r\x0b\x0c"
        is_alpha = ch.isascii() and ch.isalpha()
        if is_space or (any_separator and not is_alpha):
            new_word = True
        else:
            if new_word:
                result += 1
                new_word = False
    return result
