"""Regression workloads from differential-fuzzing findings.

Each program here is a minimized reproducer for a real bug the fuzzer
(``python -m repro fuzz``) found in the optimization pipeline, committed
so the oracle re-checks it forever:

    python -m repro fuzz --check-workloads

The header comment of each source records the original seed and the
one-line repro command that rediscovers it from scratch.
"""

from __future__ import annotations

from .registry import Workload, register

#: Seed 1 (default config).  SCCP proves ``acc & (acc / x) == 0`` because
#: ``acc`` starts at zero, leaving the division's result unused — and DCE
#: then deleted the division outright, silently dropping the
#: division-by-zero trap from -O1 and up while -O0 still raised it.
#: Minimized from 22 statements to 3 (the input-dependent divisor is kept
#: so the trap stays data-dependent).  Fixed in ``passes/dce.py``: an
#: unused div/rem is only dead when its divisor is a nonzero constant.
register(Workload(
    name="fuzz-dce-trapping-div",
    source="""\
/* fuzz seed=1: repro `python -m repro fuzz --seed 1 --minimize` */
int main(unsigned char *input, int len) {
    int acc = 0;
    acc &= (acc / islower(input[2]));
    return acc;
}
""",
    description="unused division must keep its div-by-zero trap at every "
                "level (DCE regression)",
    category="fuzz",
    default_input_bytes=3,
    sample_input=b"a?!",
))

#: Seed 15 (default config).  The loop counter's phi feeds both the exit
#: test and the increment in the body.  Jump threading checked every
#: *other* phi in the test block for outside uses but exempted the
#: branch phi itself, so it redirected ``entry`` past the test block —
#: after which the increment used a phi from a block that no longer
#: dominated it.  SimplifyCFG later folded the orphaned single-incoming
#: phi into the increment, producing the self-referential ``t = add t,
#: 1``, which sent algebraic-simplify's reassociation into an infinite
#: rewrite loop: the compile *hung* at -O2/-O3/-OVERIFY.  Minimized from
#: 21 statements to 3.  Fixed in ``passes/jump_threading.py`` (the
#: forwardability check now covers the threaded phi), with defensive
#: guards in ``passes/simplifycfg.py`` and ``passes/algebra.py`` and a
#: full SSA dominance verifier (``repro.ir.verify_ssa_dominance``) run by
#: the fuzz oracle on every compiled module.
register(Workload(
    name="fuzz-jump-thread-loop-phi",
    source="""\
/* fuzz seed=15: repro `python -m repro fuzz --seed 15 --minimize` */
int main(unsigned char *input, int len) {
    for (int i1 = 0; i1 < 1; i1 = i1 + 1) {
    }
    return 0;
}
""",
    description="threading must not bypass a block whose branch phi is "
                "used outside it (jump-threading regression)",
    category="fuzz",
    default_input_bytes=3,
    sample_input=b"abc",
))

#: Found auditing the width-boundary behavior the fuzzer exercises: all
#: three backends (eval_binary, the symex constant folder, and the symex
#: model evaluator) computed signed division as ``int(a / b)`` — a float
#: round trip that silently mis-rounds 64-bit ``long`` quotients above
#: 2**53.  The backends agreed with each other, so only a workload with
#: wide constants pins the *correct* value: (2**62 + 1) / 1 must survive
#: undamaged.  Fixed with an exact truncate-toward-zero helper shared by
#: all three sites.
register(Workload(
    name="fuzz-sdiv-wide",
    source="""\
/* 64-bit signed division must not round through a float */
int main(unsigned char *input, int len) {
    long big = ((long) 1 << 62) + 1;
    long q = big / (long) (input[0] | 1);
    long r = (0 - big) % 10;
    return (int) (q & 0xFF) + (int) (r & 0xFF);
}
""",
    description="64-bit sdiv/srem fold exactly (float-division regression)",
    category="fuzz",
    default_input_bytes=3,
    sample_input=b"\x01bc",
))
