"""Workload registry: every program the experiment harness can analyse.

Each workload is a small MiniC program with the entry point convention

    int main(unsigned char *input, int len);

where ``input`` points at the symbolic input buffer (NUL-terminated by the
harness) and ``len`` is its length.  The buffer plays the role of the
symbolic command-line arguments / stdin that the paper's Coreutils
experiments feed to KLEE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Workload:
    """One analysable program."""

    name: str
    source: str
    description: str
    category: str = "coreutils"
    #: Suggested symbolic-input size for the Figure 4 sweep.
    default_input_bytes: int = 4
    #: Sample concrete input for single-execution runs (the CLI's --run).
    sample_input: bytes = b"the quick brown fox"

    def __post_init__(self) -> None:
        if "int main(" not in self.source:
            raise ValueError(f"workload {self.name} has no main()")


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload '{workload.name}'")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(f"unknown workload '{name}'; known: "
                       f"{sorted(_REGISTRY)}") from exc


def all_workloads(category: Optional[str] = None) -> List[Workload]:
    """All registered workloads, sorted by name."""
    workloads = sorted(_REGISTRY.values(), key=lambda w: w.name)
    if category is not None:
        workloads = [w for w in workloads if w.category == category]
    return workloads


def workload_names(category: Optional[str] = None) -> List[str]:
    return [w.name for w in all_workloads(category)]
