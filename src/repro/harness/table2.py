"""Table 2 (ablation): the impact of individual transformations on
verification time vs execution time.

The paper's Table 2 is a qualitative matrix ("+", "-", "+/-").  The
reproduction turns it into a measured ablation: starting from the full
-OVERIFY configuration, each design choice called out in DESIGN.md is
disabled in turn, and both the verification cost (symbolic execution of the
wc kernel) and the execution cost (concrete interpretation) are re-measured.
A positive verification delta means the transformation helps verification; a
negative execution delta means it costs execution performance — reproducing
the paper's "conflicting requirements" observation.

Run with ``python -m repro.harness.table2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..pipelines import CompilerSession, CompileOptions, OptLevel
from ..verification import VerificationRequest, make_backend
from ..workloads import WC_PROGRAM
from .report import format_table


@dataclass
class AblationVariant:
    """One row of the ablation: the -OVERIFY configuration minus one choice."""

    name: str
    description: str
    options: CompileOptions


@dataclass
class AblationRow:
    name: str
    verify_seconds: float
    run_seconds: float
    paths: int

    def verification_impact(self, full: "AblationRow") -> str:
        """"+" if the disabled transformation was helping verification."""
        return "+" if self.verify_seconds > full.verify_seconds * 1.05 else \
            ("-" if self.verify_seconds < full.verify_seconds * 0.95 else "=")

    def execution_impact(self, full: "AblationRow") -> str:
        return "+" if self.run_seconds > full.run_seconds * 1.05 else \
            ("-" if self.run_seconds < full.run_seconds * 0.95 else "=")


def ablation_variants() -> List[AblationVariant]:
    """The design choices DESIGN.md calls out for ablation."""
    return [
        AblationVariant(
            name="full -OVERIFY",
            description="the complete verification-oriented configuration",
            options=CompileOptions(level=OptLevel.OVERIFY)),
        AblationVariant(
            name="without runtime checks",
            description="disable the runtime-check insertion pass",
            options=CompileOptions(level=OptLevel.OVERIFY,
                                   enable_runtime_checks=False)),
        AblationVariant(
            name="without verification libC",
            description="link the execution-optimized C library instead",
            options=CompileOptions(level=OptLevel.OVERIFY,
                                   verification_libc=False)),
        AblationVariant(
            name="-O3 (CPU-oriented)",
            description="the release build the paper compares against",
            options=CompileOptions(level=OptLevel.O3)),
        AblationVariant(
            name="-O0 (debug)",
            description="the unoptimized build",
            options=CompileOptions(level=OptLevel.O0)),
    ]


def measure_variant(variant: AblationVariant, symbolic_input_bytes: int,
                    timeout_seconds: float, concrete_input: bytes,
                    session: Optional[CompilerSession] = None) -> AblationRow:
    session = session or CompilerSession()
    compiled = session.compile(WC_PROGRAM, variant.options)
    request = VerificationRequest(symbolic_input_bytes=symbolic_input_bytes,
                                  concrete_input=concrete_input,
                                  timeout_seconds=timeout_seconds)
    verified = make_backend("symex").verify(compiled.module, request)
    concrete = make_backend("interp").verify(compiled.module, request)
    return AblationRow(name=variant.name,
                       verify_seconds=verified.seconds,
                       run_seconds=concrete.seconds,
                       paths=verified.paths)


def reproduce_table2(symbolic_input_bytes: int = 4,
                     timeout_seconds: float = 60.0,
                     concrete_input: bytes = b"some words to count here"
                     ) -> List[AblationRow]:
    # All variants compile the same wc source, so one session shares the
    # front end and translated analyses across the whole ablation.
    session = CompilerSession()
    rows = []
    for variant in ablation_variants():
        rows.append(measure_variant(variant, symbolic_input_bytes,
                                    timeout_seconds, concrete_input,
                                    session=session))
    return rows


def render_table2(rows: List[AblationRow]) -> str:
    full = rows[0]
    table_rows = []
    for row in rows:
        table_rows.append([
            row.name,
            f"{row.verify_seconds * 1000:.0f}",
            f"{row.run_seconds * 1000:.0f}",
            row.paths,
            row.verification_impact(full) if row is not full else "·",
            row.execution_impact(full) if row is not full else "·",
        ])
    return format_table(
        ["configuration", "t_verify [ms]", "t_run [ms]", "paths",
         "verif. cost vs full", "exec. cost vs full"],
        table_rows,
        title="Table 2 (measured ablation of the -OVERIFY design choices)")


def main() -> None:  # pragma: no cover - exercised via CLI
    rows = reproduce_table2()
    print(render_table2(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
