"""Table 3: static transformation counts when compiling the Coreutils-like
suite with different options.

The paper compiles Coreutils 6.10 with -O0, -O3 and -OSYMBEX and reports how
many functions were inlined, loops unswitched, loops unrolled, and branches
converted to branch-free form.  The reproduction compiles every registered
Coreutils-like workload (linked against the appropriate libc variant) and
sums the same four counters from the pass statistics.

Run with ``python -m repro.harness.table3``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..pipelines import CompilerSession, CompileOptions, OptLevel
from ..workloads import all_workloads
from .report import format_table

TABLE3_LEVELS: Sequence[OptLevel] = (OptLevel.O0, OptLevel.O3, OptLevel.OVERIFY)

TABLE3_ROWS = [
    ("# functions inlined", "functions_inlined"),
    ("# loops unswitched", "loops_unswitched"),
    ("# loops unrolled", "loops_unrolled"),
    ("# branches converted", "branches_converted"),
]


@dataclass
class Table3:
    """Aggregated transformation counts per level."""

    totals: Dict[OptLevel, Dict[str, int]]
    per_program: Dict[str, Dict[OptLevel, Dict[str, int]]] = field(
        default_factory=dict)
    programs: int = 0

    def render(self) -> str:
        headers = ["Optimization"] + [str(level) for level in TABLE3_LEVELS]
        rows: List[List[object]] = []
        for label, key in TABLE3_ROWS:
            rows.append([label] + [self.totals[level][key]
                                   for level in TABLE3_LEVELS])
        title = (f"Table 3: compiling {self.programs} Coreutils-like "
                 f"programs with different options")
        return format_table(headers, rows, title=title)

    def monotonic_in_aggressiveness(self) -> bool:
        """The paper's qualitative claim: -OSYMBEX performs at least as many
        of each transformation as -O3, which performs at least as many as
        -O0 (which performs none)."""
        for _, key in TABLE3_ROWS:
            o0 = self.totals[OptLevel.O0][key]
            o3 = self.totals[OptLevel.O3][key]
            overify = self.totals[OptLevel.OVERIFY][key]
            if not (o0 <= o3 <= overify):
                return False
        return True


def reproduce_table3(category: Optional[str] = "coreutils",
                     workload_names: Optional[Sequence[str]] = None) -> Table3:
    """Compile the workload suite at -O0/-O3/-OVERIFY and aggregate counts."""
    workloads = all_workloads(category)
    if workload_names is not None:
        workloads = [w for w in workloads if w.name in set(workload_names)]
    totals: Dict[OptLevel, Dict[str, int]] = {
        level: {key: 0 for _, key in TABLE3_ROWS} for level in TABLE3_LEVELS}
    per_program: Dict[str, Dict[OptLevel, Dict[str, int]]] = {}
    for workload in workloads:
        per_program[workload.name] = {}
        # One session per workload: the levels share the parsed front end
        # and translated analyses.
        session = CompilerSession()
        for level in TABLE3_LEVELS:
            # Every level is compiled against the same (execution-oriented)
            # C library so that the transformation counts compare the *pass
            # pipelines*, not the library sources — matching the paper's
            # Table 3, which predates the verification libc.
            result = session.compile(workload.source,
                                     CompileOptions(level=level,
                                                    verification_libc=False))
            row = result.table3_row()
            per_program[workload.name][level] = row
            for _, key in TABLE3_ROWS:
                totals[level][key] += row[key]
    return Table3(totals=totals, per_program=per_program,
                  programs=len(workloads))


def main() -> None:  # pragma: no cover - exercised via CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--category", default="coreutils")
    args = parser.parse_args()
    table = reproduce_table3(args.category)
    print(table.render())
    print()
    print("monotonic (O0 <= O3 <= OVERIFY for every row):",
          table.monotonic_in_aggressiveness())


if __name__ == "__main__":  # pragma: no cover
    main()
