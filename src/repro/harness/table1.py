"""Table 1: exhaustive symbolic execution of the ``wc`` kernel.

The paper explores all paths through Listing 1 for strings of up to 10
characters and reports, per optimization level: verification time, compile
time, run time (on a text with 108 words), the number of instructions KLEE
interpreted, and the number of explored paths.

The reproduction keeps the experiment identical in structure but scales the
symbolic string length down (default 5 bytes) because the engine is a pure
Python interpreter: the relative ordering between levels — which is the
paper's claim — is unaffected by the bound.

Run with ``python -m repro.harness.table1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..pipelines import OptLevel
from ..workloads import WC_PROGRAM
from .experiment import ExperimentConfig, ExperimentResult, run_level_sweep
from .report import format_table

#: Optimization levels in the order the paper's Table 1 lists them.
TABLE1_LEVELS: Sequence[OptLevel] = (
    OptLevel.O0, OptLevel.O2, OptLevel.O3, OptLevel.OVERIFY,
)

#: A ~108-word text, mirroring the paper's t_run measurement input.
RUN_TEXT = (b"the quick brown fox jumps over the lazy dog " * 12)[:500]


@dataclass
class Table1:
    """The reproduced table."""

    results: Dict[OptLevel, ExperimentResult]
    symbolic_input_bytes: int

    def rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        metrics = [
            ("t_verify [ms]", lambda r: f"{r.verify_seconds * 1000:.0f}"),
            ("t_compile [ms]", lambda r: f"{r.compile_seconds * 1000:.0f}"),
            ("t_run [ms]", lambda r: f"{r.run_seconds * 1000:.0f}"),
            ("# instructions", lambda r: r.interpreted_instructions),
            ("# paths", lambda r: r.paths),
            ("# solver queries",
             lambda r: int(r.solver_stats.get("queries", 0))),
            ("# solver cache hits",
             lambda r: int(r.solver_stats.get("cache_hits", 0))),
            ("# model-cache hits",
             lambda r: int(r.solver_stats.get("model_cache_hits", 0))),
            ("# ubtree hits",
             lambda r: int(r.solver_stats.get("ubtree_hits", 0))),
            ("# equality rewrites",
             lambda r: int(r.solver_stats.get("equality_rewrites", 0))),
            ("# prune splits",
             lambda r: int(r.solver_stats.get("prune_splits", 0))),
            # Which budget stopped the run, if any — a truncated level's
            # path/instruction rows undercount, and the table says so.
            ("budget hit", lambda r: r.termination_reason or "none"),
        ]
        for label, getter in metrics:
            rows.append([label] + [getter(self.results[level])
                                   for level in TABLE1_LEVELS])
        return rows

    def render(self) -> str:
        headers = ["Optimization"] + [str(level) for level in TABLE1_LEVELS]
        title = (f"Table 1: exhaustive exploration of wc "
                 f"({self.symbolic_input_bytes} symbolic bytes)")
        return format_table(headers, self.rows(), title=title)

    # ------------------------------------------------------- shape checks
    def verify_speedup_over(self, baseline: OptLevel) -> float:
        """t_verify(baseline) / t_verify(-OVERIFY)."""
        overify = self.results[OptLevel.OVERIFY].verify_seconds
        if overify <= 0:
            overify = 1e-9
        return self.results[baseline].verify_seconds / overify

    def paths_reduction_over(self, baseline: OptLevel) -> float:
        overify = max(1, self.results[OptLevel.OVERIFY].paths)
        return self.results[baseline].paths / overify


def reproduce_table1(symbolic_input_bytes: int = 5,
                     timeout_seconds: float = 120.0,
                     workers: int = 1) -> Table1:
    """Run the Table 1 experiment and return the results.

    ``workers > 1`` verifies through the parallel executor
    (``symex<workers=N>``): per-worker statistics are merged
    deterministically before they reach the table, so for runs that
    finish within budget every row except the wall-clock timings is
    identical to a single-worker run.  (A budget-bound run's stopping
    point is schedule-dependent, so its path/instruction tails can
    differ — raise ``timeout_seconds`` to compare those rows.)"""
    backend = "symex" if workers == 1 else f"symex<workers={workers}>"
    config = ExperimentConfig(
        level=OptLevel.O0,
        symbolic_input_bytes=symbolic_input_bytes,
        concrete_input=RUN_TEXT,
        timeout_seconds=timeout_seconds,
        backend=backend,
    )
    results = run_level_sweep("wc", WC_PROGRAM, TABLE1_LEVELS, config)
    return Table1(results=results, symbolic_input_bytes=symbolic_input_bytes)


def main() -> None:  # pragma: no cover - exercised via CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=5,
                        help="number of symbolic input bytes (paper: 10)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-level verification budget in seconds")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker threads for the symbolic executor")
    args = parser.parse_args()
    table = reproduce_table1(args.bytes, args.timeout, workers=args.workers)
    print(table.render())
    print()
    print(f"verification speedup of -OVERIFY over -O0: "
          f"{table.verify_speedup_over(OptLevel.O0):.1f}x")
    print(f"verification speedup of -OVERIFY over -O3: "
          f"{table.verify_speedup_over(OptLevel.O3):.1f}x")
    print(f"path reduction of -OVERIFY over -O0: "
          f"{table.paths_reduction_over(OptLevel.O0):.1f}x")


if __name__ == "__main__":  # pragma: no cover
    main()
