"""Figure 4: per-program compile+analysis time for the Coreutils-like suite.

The paper runs KLEE on each of 93 Coreutils programs compiled with -O0, -O3
and -OSYMBEX (2-10 bytes of symbolic input, one hour budget each), keeps the
experiments where at least one version finishes, and plots, per program, the
time of the fastest of -O3/-OSYMBEX plus the time gained by one over the
other.  It reports a 58% mean reduction in compilation+analysis time versus
-O3 (63% versus -O0) and a maximum gain of 95x.

The reproduction runs the same sweep over the registered workloads with a
scaled-down per-program budget and renders the figure as an ASCII bar chart
plus the same summary statistics.

Run with ``python -m repro.harness.figure4``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..pipelines import OptLevel
from ..workloads import Workload, all_workloads
from .experiment import ExperimentConfig, ExperimentResult, run_level_sweep
from .report import format_bar_chart, format_table

FIGURE4_LEVELS: Sequence[OptLevel] = (OptLevel.O0, OptLevel.O3, OptLevel.OVERIFY)


@dataclass
class ProgramOutcome:
    """Per-program measurements across the three builds."""

    name: str
    results: Dict[OptLevel, ExperimentResult]

    def total(self, level: OptLevel) -> float:
        return self.results[level].total_seconds

    def timed_out(self, level: OptLevel) -> bool:
        return self.results[level].timed_out

    @property
    def gain_over_o3(self) -> float:
        """Time gained by -OVERIFY over -O3 (positive when -OVERIFY wins)."""
        return self.total(OptLevel.O3) - self.total(OptLevel.OVERIFY)

    @property
    def speedup_over_o3(self) -> float:
        overify = max(self.total(OptLevel.OVERIFY), 1e-9)
        return self.total(OptLevel.O3) / overify


@dataclass
class Figure4:
    """All per-program outcomes plus the aggregate statistics."""

    outcomes: List[ProgramOutcome]
    symbolic_input_bytes: int
    timeout_seconds: float

    # ------------------------------------------------------------ summary
    def kept(self) -> List[ProgramOutcome]:
        """Experiments where at least one build finished (paper's filter)."""
        return [o for o in self.outcomes
                if not all(o.timed_out(level) for level in FIGURE4_LEVELS)]

    def mean_reduction_vs(self, baseline: OptLevel) -> float:
        """Mean reduction of total time versus ``baseline`` (paper: 58% vs
        -O3 and 63% vs -O0)."""
        kept = self.kept()
        if not kept:
            return 0.0
        reductions = []
        for outcome in kept:
            base = outcome.total(baseline)
            overify = outcome.total(OptLevel.OVERIFY)
            if base <= 0:
                continue
            reductions.append((base - overify) / base)
        return sum(reductions) / len(reductions) if reductions else 0.0

    def total_time_reduction_vs(self, baseline: OptLevel) -> float:
        """Reduction of the *total* (summed over programs) compile+analysis
        time versus ``baseline``.  On scaled-down inputs the per-program mean
        is dominated by programs whose runtime is pure compile time, so the
        aggregate is the more faithful analogue of the paper's long-budget
        average."""
        kept = self.kept()
        base_total = sum(outcome.total(baseline) for outcome in kept)
        overify_total = sum(outcome.total(OptLevel.OVERIFY) for outcome in kept)
        if base_total <= 0:
            return 0.0
        return (base_total - overify_total) / base_total

    def max_speedup_vs(self, baseline: OptLevel) -> float:
        kept = self.kept()
        if not kept:
            return 0.0
        return max(outcome.total(baseline) /
                   max(outcome.total(OptLevel.OVERIFY), 1e-9)
                   for outcome in kept)

    def timeouts(self, level: OptLevel) -> int:
        return sum(1 for outcome in self.outcomes if outcome.timed_out(level))

    def rescued_programs(self, baseline: OptLevel) -> int:
        """Programs that time out at ``baseline`` but finish with -OVERIFY."""
        return sum(1 for outcome in self.outcomes
                   if outcome.timed_out(baseline)
                   and not outcome.timed_out(OptLevel.OVERIFY))

    def solver_stat_total(self, key: str) -> int:
        """A solver counter summed over every program and level of the
        sweep (queries, cache_hits, model_cache_hits, ...)."""
        return sum(int(outcome.results[level].solver_stats.get(key, 0))
                   for outcome in self.outcomes
                   for level in FIGURE4_LEVELS)

    # ------------------------------------------------------------ rendering
    def render(self) -> str:
        kept = sorted(self.kept(), key=lambda o: o.gain_over_o3)
        labels = []
        values = []
        for outcome in kept:
            fastest = min(outcome.total(OptLevel.O3),
                          outcome.total(OptLevel.OVERIFY))
            gain = outcome.gain_over_o3
            marker = "+" if gain >= 0 else "-"
            labels.append(f"{outcome.name} [{marker}{abs(gain):.2f}s]")
            values.append(fastest + abs(gain))
        chart = format_bar_chart(
            labels, values,
            title=(f"Figure 4: compile+analysis time per program "
                   f"({self.symbolic_input_bytes} symbolic bytes, "
                   f"{self.timeout_seconds:.0f}s budget); "
                   f"bar = fastest-of-two + |gain|, sign = -OVERIFY gain "
                   f"over -O3"))
        summary_rows = [
            ["mean reduction vs -O3",
             f"{self.mean_reduction_vs(OptLevel.O3) * 100:.0f}%"],
            ["mean reduction vs -O0",
             f"{self.mean_reduction_vs(OptLevel.O0) * 100:.0f}%"],
            ["total-time reduction vs -O3",
             f"{self.total_time_reduction_vs(OptLevel.O3) * 100:.0f}%"],
            ["total-time reduction vs -O0",
             f"{self.total_time_reduction_vs(OptLevel.O0) * 100:.0f}%"],
            ["max speedup vs -O3", f"{self.max_speedup_vs(OptLevel.O3):.1f}x"],
            ["timeouts at -O0", self.timeouts(OptLevel.O0)],
            ["timeouts at -O3", self.timeouts(OptLevel.O3)],
            ["timeouts at -OVERIFY", self.timeouts(OptLevel.OVERIFY)],
            ["rescued vs -O3 (timed out at -O3, finish with -OVERIFY)",
             self.rescued_programs(OptLevel.O3)],
            ["solver queries (sweep total)",
             self.solver_stat_total("queries")],
            ["solver cache hits (sweep total)",
             self.solver_stat_total("cache_hits")],
            ["solver model-cache hits (sweep total)",
             self.solver_stat_total("model_cache_hits")],
            ["solver ubtree hits (sweep total)",
             self.solver_stat_total("ubtree_hits")],
            ["solver equality rewrites (sweep total)",
             self.solver_stat_total("equality_rewrites")],
            ["solver prune splits (sweep total)",
             self.solver_stat_total("prune_splits")],
            ["solver assignments tried (sweep total)",
             self.solver_stat_total("assignments_tried")],
        ]
        summary = format_table(["statistic", "value"], summary_rows,
                               title="Figure 4 summary")
        return chart + "\n\n" + summary


def reproduce_figure4(symbolic_input_bytes: int = 4,
                      timeout_seconds: float = 20.0,
                      max_instructions: int = 400_000,
                      workloads: Optional[Sequence[Workload]] = None,
                      category: Optional[str] = "coreutils",
                      workers: int = 1) -> Figure4:
    """Run the Figure 4 sweep over the workload suite.

    ``workers > 1`` verifies each program through the parallel executor;
    merged per-worker stats feed the summary.  Programs that finish
    within budget reproduce the single-worker counters exactly; a
    budget-bound program's stopping point is schedule-dependent, so its
    truncated counts (and which side of the timeout line it lands on)
    can differ from a single-worker sweep."""
    selected = list(workloads) if workloads is not None \
        else all_workloads(category)
    backend = "symex" if workers == 1 else f"symex<workers={workers}>"
    outcomes: List[ProgramOutcome] = []
    for workload in selected:
        config = ExperimentConfig(
            level=OptLevel.O0,
            symbolic_input_bytes=symbolic_input_bytes,
            timeout_seconds=timeout_seconds,
            max_instructions=max_instructions,
            concrete_input=b"sample: input\ntext 42\n",
            backend=backend,
        )
        results = run_level_sweep(workload.name, workload.source,
                                  FIGURE4_LEVELS, config)
        outcomes.append(ProgramOutcome(name=workload.name, results=results))
    return Figure4(outcomes=outcomes,
                   symbolic_input_bytes=symbolic_input_bytes,
                   timeout_seconds=timeout_seconds)


def main() -> None:  # pragma: no cover - exercised via CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=4,
                        help="symbolic input bytes per program (paper: 2-10)")
    parser.add_argument("--timeout", type=float, default=20.0,
                        help="per-program, per-level budget in seconds "
                             "(paper: 3600)")
    parser.add_argument("--programs", nargs="*", default=None,
                        help="restrict to these workload names")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker threads for the symbolic executor")
    args = parser.parse_args()
    workloads = None
    if args.programs:
        from ..workloads import get_workload
        workloads = [get_workload(name) for name in args.programs]
    figure = reproduce_figure4(symbolic_input_bytes=args.bytes,
                               timeout_seconds=args.timeout,
                               workloads=workloads,
                               workers=args.workers)
    print(figure.render())


if __name__ == "__main__":  # pragma: no cover
    main()
