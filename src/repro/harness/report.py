"""Plain-text table/figure rendering for the experiment harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render rows as an aligned plain-text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    for row in materialized:
        parts.append(line(row))
    return "\n".join(parts)


def format_bar_chart(labels: Sequence[str], values: Sequence[float],
                     width: int = 50, title: str = "",
                     unit: str = "s") -> str:
    """Render a horizontal ASCII bar chart (used for Figure 4)."""
    peak = max(values) if values else 1.0
    peak = peak or 1.0
    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    label_width = max((len(label) for label in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / peak)))
        parts.append(f"{label.ljust(label_width)}  {value:8.2f}{unit}  {bar}")
    return "\n".join(parts)
