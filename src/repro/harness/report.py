"""Plain-text table/figure rendering for the experiment harness."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from ..passes import PassRunRecord


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render rows as an aligned plain-text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    for row in materialized:
        parts.append(line(row))
    return "\n".join(parts)


def format_pass_history(history: Sequence["PassRunRecord"],
                        title: str = "Pass pipeline") -> str:
    """Render per-pass timing and analysis-cache behaviour as a table.

    One row per pass execution, plus a totals row; this is how the
    compile-side effect of the analysis-manager caching shows up in the
    harness output.
    """
    rows: List[List[object]] = []
    total_seconds = 0.0
    total_hits = 0
    total_misses = 0
    for record in history:
        total_seconds += record.duration_seconds
        total_hits += record.analysis_cache_hits
        total_misses += record.analysis_cache_misses
        rows.append([
            record.pass_name,
            "yes" if record.changed else "no",
            f"{record.duration_seconds * 1000:.2f}",
            record.analysis_cache_hits,
            record.analysis_cache_misses,
        ])
    rows.append(["TOTAL", "", f"{total_seconds * 1000:.2f}",
                 total_hits, total_misses])
    headers = ["pass", "changed", "ms", "cache hits", "cache misses"]
    return format_table(headers, rows, title=title)


def format_bar_chart(labels: Sequence[str], values: Sequence[float],
                     width: int = 50, title: str = "",
                     unit: str = "s") -> str:
    """Render a horizontal ASCII bar chart (used for Figure 4)."""
    peak = max(values) if values else 1.0
    peak = peak or 1.0
    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    label_width = max((len(label) for label in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / peak)))
        parts.append(f"{label.ljust(label_width)}  {value:8.2f}{unit}  {bar}")
    return "\n".join(parts)
