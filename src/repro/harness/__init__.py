"""repro.harness — drivers that regenerate the paper's tables and figures.

* ``python -m repro.harness.table1`` — Table 1 (wc kernel, all levels)
* ``python -m repro.harness.table2`` — Table 2 (measured ablation)
* ``python -m repro.harness.table3`` — Table 3 (transformation counts)
* ``python -m repro.harness.figure4`` — Figure 4 (per-program sweep)
"""

from .experiment import (
    ExperimentConfig, ExperimentResult, run_experiment, run_level_sweep,
    verification_request,
)
from .report import format_bar_chart, format_pass_history, format_table
from .table1 import Table1, TABLE1_LEVELS, reproduce_table1
from .table2 import AblationRow, AblationVariant, reproduce_table2, render_table2
from .table3 import Table3, TABLE3_LEVELS, reproduce_table3
from .figure4 import Figure4, FIGURE4_LEVELS, ProgramOutcome, reproduce_figure4

__all__ = [
    "ExperimentConfig", "ExperimentResult", "run_experiment",
    "run_level_sweep", "verification_request",
    "format_bar_chart", "format_pass_history", "format_table",
    "Table1", "TABLE1_LEVELS", "reproduce_table1",
    "AblationRow", "AblationVariant", "reproduce_table2", "render_table2",
    "Table3", "TABLE3_LEVELS", "reproduce_table3",
    "Figure4", "FIGURE4_LEVELS", "ProgramOutcome", "reproduce_figure4",
]
