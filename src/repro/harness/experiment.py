"""Shared experiment runner.

One "experiment" is: compile a workload at an optimization level, then (a)
exhaustively verify it with the configured verification backend over a
bounded symbolic input and (b) concretely run it on a sample input.  These
are the measurements all of the paper's tables and figures are built from.

Compilation goes through a :class:`~repro.pipelines.CompilerSession` (one
per workload, shared across the levels of a sweep) and both measurement
phases go through the :class:`~repro.verification.VerificationBackend`
protocol — the verify phase via the configurable backend spec (default
``symex``, searcher selectable by name), the run phase via ``interp``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from ..pipelines import (
    CompilationResult, CompileOptions, CompilerSession, OptLevel,
    compile_source,
)
from ..verification import VerificationRequest, make_backend


@dataclass
class ExperimentConfig:
    """Parameters of one compile+verify+run experiment."""

    level: OptLevel
    symbolic_input_bytes: int = 4
    concrete_input: bytes = b"the quick brown fox"
    #: Per-experiment verification budget (the paper used a one-hour budget
    #: per Coreutils program; scale down for a Python-based engine).
    timeout_seconds: float = 60.0
    max_instructions: int = 5_000_000
    enable_runtime_checks: bool = True
    verification_libc: Optional[bool] = None
    #: Verification backend spec (``symex``, ``symex<searcher=bfs>``, ...).
    backend: str = "symex"
    #: Search strategy for path-exploring backends (``dfs``/``bfs``/
    #: ``random``); a searcher named in ``backend`` wins over this.
    searcher: str = "dfs"


@dataclass
class ExperimentResult:
    """The measurements of one experiment (one bar/cell in the paper)."""

    workload: str
    level: OptLevel
    compile_seconds: float
    verify_seconds: float
    run_seconds: float
    static_instructions: int
    interpreted_instructions: int
    concrete_instructions: int
    paths: int
    errors: int
    timed_out: bool
    #: Paths the verify backend abandoned because the *engine* failed
    #: (contained faults, not program bugs); 0 on a healthy run.
    engine_errors: int = 0
    #: Which budget truncated verification ("timeout", "instructions",
    #: "paths", "forks", "worker-loss"); "" when exploration finished.
    termination_reason: str = ""
    transform_stats: Dict[str, int] = field(default_factory=dict)
    bug_signatures: frozenset = frozenset()
    return_value: Optional[int] = None
    #: Canonical spec of the backend that produced the verify phase.
    verify_backend: str = "symex"
    #: Constraint-solver counters from the verify phase (solver-backed
    #: backends only; see :class:`repro.symex.SolverStats`).
    solver_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Compile + analysis time: what Figure 4 plots per program."""
        return self.compile_seconds + self.verify_seconds


def verification_request(config: ExperimentConfig) -> VerificationRequest:
    """The backend request corresponding to an experiment config."""
    return VerificationRequest(
        symbolic_input_bytes=config.symbolic_input_bytes,
        concrete_input=config.concrete_input,
        timeout_seconds=config.timeout_seconds,
        max_instructions=config.max_instructions,
    )


def run_experiment(name: str, source: str, config: ExperimentConfig,
                   session: Optional[CompilerSession] = None
                   ) -> ExperimentResult:
    """Compile ``source`` at ``config.level`` and measure verification and
    execution cost.  Pass a session to share front-end work and analysis
    caches with other experiments on the same workload."""
    options = CompileOptions(
        level=config.level,
        enable_runtime_checks=config.enable_runtime_checks,
        verification_libc=config.verification_libc,
    )
    compiled: CompilationResult = compile_source(source, options,
                                                 session=session)

    request = verification_request(config)
    verifier = make_backend(config.backend, searcher=config.searcher)
    verified = verifier.verify(compiled.module, request)
    concrete = make_backend("interp").verify(compiled.module, request)

    return ExperimentResult(
        workload=name,
        level=config.level,
        compile_seconds=compiled.compile_seconds,
        verify_seconds=verified.seconds,
        run_seconds=concrete.seconds,
        static_instructions=compiled.instruction_count,
        interpreted_instructions=verified.instructions,
        concrete_instructions=concrete.instructions,
        paths=verified.paths,
        errors=verified.errors,
        timed_out=verified.timed_out,
        engine_errors=verified.engine_errors,
        termination_reason=verified.termination_reason,
        transform_stats=compiled.stats.as_dict(),
        bug_signatures=verified.bug_signatures,
        return_value=concrete.return_value,
        verify_backend=verified.backend,
        solver_stats=verified.solver_stats,
    )


def run_level_sweep(name: str, source: str, levels: Sequence[OptLevel],
                    base_config: ExperimentConfig,
                    session: Optional[CompilerSession] = None
                    ) -> Dict[OptLevel, ExperimentResult]:
    """Run the same workload at several optimization levels through one
    shared compiler session."""
    session = session or CompilerSession()
    results: Dict[OptLevel, ExperimentResult] = {}
    for level in levels:
        config = replace(base_config, level=level)
        results[level] = run_experiment(name, source, config,
                                        session=session)
    return results
