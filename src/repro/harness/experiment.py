"""Shared experiment runner.

One "experiment" is: compile a workload at an optimization level, then (a)
exhaustively symbolically execute it over a bounded symbolic input and (b)
concretely run it on a sample input.  These are the measurements all of the
paper's tables and figures are built from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..interp import Interpreter, run_module
from ..pipelines import CompilationResult, CompileOptions, OptLevel, compile_source
from ..symex import SymexLimits, SymexReport, explore


@dataclass
class ExperimentConfig:
    """Parameters of one compile+verify+run experiment."""

    level: OptLevel
    symbolic_input_bytes: int = 4
    concrete_input: bytes = b"the quick brown fox"
    #: Per-experiment verification budget (the paper used a one-hour budget
    #: per Coreutils program; scale down for a Python-based engine).
    timeout_seconds: float = 60.0
    max_instructions: int = 5_000_000
    enable_runtime_checks: bool = True
    verification_libc: Optional[bool] = None


@dataclass
class ExperimentResult:
    """The measurements of one experiment (one bar/cell in the paper)."""

    workload: str
    level: OptLevel
    compile_seconds: float
    verify_seconds: float
    run_seconds: float
    static_instructions: int
    interpreted_instructions: int
    concrete_instructions: int
    paths: int
    errors: int
    timed_out: bool
    transform_stats: Dict[str, int] = field(default_factory=dict)
    bug_signatures: frozenset = frozenset()
    return_value: Optional[int] = None

    @property
    def total_seconds(self) -> float:
        """Compile + analysis time: what Figure 4 plots per program."""
        return self.compile_seconds + self.verify_seconds


def run_experiment(name: str, source: str,
                   config: ExperimentConfig) -> ExperimentResult:
    """Compile ``source`` at ``config.level`` and measure verification and
    execution cost."""
    options = CompileOptions(
        level=config.level,
        enable_runtime_checks=config.enable_runtime_checks,
        verification_libc=config.verification_libc,
    )
    compiled = compile_source(source, options)

    limits = SymexLimits(timeout_seconds=config.timeout_seconds,
                         max_instructions=config.max_instructions)
    verify_start = time.perf_counter()
    report = explore(compiled.module, config.symbolic_input_bytes,
                     limits=limits)
    verify_seconds = time.perf_counter() - verify_start

    run_start = time.perf_counter()
    concrete = run_module(compiled.module, config.concrete_input)
    run_seconds = time.perf_counter() - run_start

    return ExperimentResult(
        workload=name,
        level=config.level,
        compile_seconds=compiled.compile_seconds,
        verify_seconds=verify_seconds,
        run_seconds=run_seconds,
        static_instructions=compiled.instruction_count,
        interpreted_instructions=report.stats.instructions_interpreted,
        concrete_instructions=concrete.stats.instructions_executed,
        paths=report.stats.total_paths,
        errors=report.stats.paths_errored,
        timed_out=report.stats.timed_out,
        transform_stats=compiled.stats.as_dict(),
        bug_signatures=frozenset(report.bug_signatures()),
        return_value=concrete.return_value,
    )


def run_level_sweep(name: str, source: str, levels: Sequence[OptLevel],
                    base_config: ExperimentConfig) -> Dict[OptLevel, ExperimentResult]:
    """Run the same workload at several optimization levels."""
    results: Dict[OptLevel, ExperimentResult] = {}
    for level in levels:
        config = ExperimentConfig(
            level=level,
            symbolic_input_bytes=base_config.symbolic_input_bytes,
            concrete_input=base_config.concrete_input,
            timeout_seconds=base_config.timeout_seconds,
            max_instructions=base_config.max_instructions,
            enable_runtime_checks=base_config.enable_runtime_checks,
            verification_libc=base_config.verification_libc,
        )
        results[level] = run_experiment(name, source, config)
    return results
