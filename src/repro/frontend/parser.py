"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import ast
from .ctype import (
    BOOL, CArray, CHAR, CInt, CPointer, CStruct, CType, INT, LONG, SHORT,
    UCHAR, UINT, ULONG, USHORT, VOID,
)
from .lexer import Token, TokenKind, tokenize
from .source import CompileError, SourceLocation

# Operator precedence for the binary-expression climbing parser.  Higher
# binds tighter.  Assignment and the conditional operator are handled
# separately because of their right associativity.
_BINARY_PRECEDENCE: Dict[str, int] = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    """Parses a token stream into a :class:`repro.frontend.ast.TranslationUnit`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.struct_types: Dict[str, CStruct] = {}

    # ------------------------------------------------------------ utilities
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _check_punct(self, text: str) -> bool:
        return self._peek().is_punct(text)

    def _accept_punct(self, text: str) -> bool:
        if self._check_punct(text):
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if not token.is_punct(text):
            raise CompileError(f"expected '{text}', found '{token.text}'",
                               token.location)
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise CompileError(f"expected identifier, found '{token.text}'",
                               token.location)
        return self._advance()

    # ------------------------------------------------------------ types
    def _at_type_start(self) -> bool:
        token = self._peek()
        if token.is_keyword("void", "char", "short", "int", "long", "unsigned",
                            "signed", "_Bool", "const", "struct"):
            return True
        return False

    def _parse_base_type(self) -> CType:
        token = self._peek()
        # const is accepted and ignored (MiniC has no const semantics).
        while self._peek().is_keyword("const"):
            self._advance()
            token = self._peek()
        if token.is_keyword("struct"):
            self._advance()
            name_tok = self._expect_ident()
            if name_tok.text not in self.struct_types:
                # Allow forward references; fields get filled in at definition.
                self.struct_types[name_tok.text] = CStruct(name_tok.text)
            return self.struct_types[name_tok.text]

        signed = True
        saw_sign = False
        if token.is_keyword("unsigned"):
            signed = False
            saw_sign = True
            self._advance()
        elif token.is_keyword("signed"):
            saw_sign = True
            self._advance()

        token = self._peek()
        if token.is_keyword("void"):
            self._advance()
            return VOID
        if token.is_keyword("_Bool"):
            self._advance()
            return BOOL
        if token.is_keyword("char"):
            self._advance()
            return CHAR if signed else UCHAR
        if token.is_keyword("short"):
            self._advance()
            if self._peek().is_keyword("int"):
                self._advance()
            return SHORT if signed else USHORT
        if token.is_keyword("long"):
            self._advance()
            if self._peek().is_keyword("long"):
                self._advance()
            if self._peek().is_keyword("int"):
                self._advance()
            return LONG if signed else ULONG
        if token.is_keyword("int"):
            self._advance()
            return INT if signed else UINT
        if saw_sign:
            return INT if signed else UINT
        raise CompileError(f"expected type, found '{token.text}'", token.location)

    def _parse_type(self) -> CType:
        ty = self._parse_base_type()
        while self._accept_punct("*"):
            while self._peek().is_keyword("const"):
                self._advance()
            ty = CPointer(ty)
        return ty

    # --------------------------------------------------------- top level
    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self._peek().kind is not TokenKind.EOF:
            token = self._peek()
            if token.is_keyword("struct") and self._peek(2).is_punct("{"):
                unit.structs.append(self._parse_struct_def())
                continue
            is_extern = False
            while self._peek().is_keyword("extern", "static"):
                if self._peek().is_keyword("extern"):
                    is_extern = True
                self._advance()
            base = self._parse_type()
            name_tok = self._expect_ident()
            if self._check_punct("("):
                unit.functions.append(
                    self._parse_function(base, name_tok, is_extern))
            else:
                unit.globals.append(self._parse_global(base, name_tok))
        return unit

    def _parse_struct_def(self) -> ast.StructDef:
        location = self._peek().location
        self._advance()  # struct
        name_tok = self._expect_ident()
        self._expect_punct("{")
        field_names: List[str] = []
        field_types: List[CType] = []
        while not self._check_punct("}"):
            field_type = self._parse_type()
            field_name = self._expect_ident()
            field_type = self._parse_array_suffix(field_type)
            field_names.append(field_name.text)
            field_types.append(field_type)
            self._expect_punct(";")
        self._expect_punct("}")
        self._expect_punct(";")
        struct = CStruct(name_tok.text, tuple(field_names), tuple(field_types))
        self.struct_types[name_tok.text] = struct
        return ast.StructDef(name=name_tok.text, field_names=field_names,
                             field_types=field_types, location=location)

    def _parse_array_suffix(self, ty: CType) -> CType:
        dims: List[int] = []
        while self._accept_punct("["):
            size_tok = self._peek()
            if size_tok.kind is not TokenKind.INT_LITERAL:
                raise CompileError("array size must be an integer literal",
                                   size_tok.location)
            self._advance()
            self._expect_punct("]")
            dims.append(size_tok.value)
        for dim in reversed(dims):
            ty = CArray(ty, dim)
        return ty

    def _parse_global(self, var_type: CType, name_tok: Token) -> ast.GlobalDecl:
        var_type = self._parse_array_suffix(var_type)
        initializer: Optional[ast.Expr] = None
        if self._accept_punct("="):
            initializer = self._parse_assignment_expr()
        self._expect_punct(";")
        return ast.GlobalDecl(name=name_tok.text, var_type=var_type,
                              initializer=initializer,
                              location=name_tok.location)

    def _parse_function(self, return_type: CType, name_tok: Token,
                        is_extern: bool) -> ast.FunctionDef:
        self._expect_punct("(")
        parameters: List[ast.Parameter] = []
        is_vararg = False
        if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
            self._advance()
        elif not self._check_punct(")"):
            while True:
                if self._accept_punct("..."):
                    is_vararg = True
                    break
                param_type = self._parse_type()
                param_name = ""
                if self._peek().kind is TokenKind.IDENT:
                    param_name = self._advance().text
                param_type = self._parse_array_suffix(param_type)
                parameters.append(ast.Parameter(name=param_name,
                                                param_type=param_type))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        body: Optional[ast.Block] = None
        if self._check_punct("{"):
            body = self._parse_block()
        else:
            self._expect_punct(";")
        return ast.FunctionDef(name=name_tok.text, return_type=return_type,
                               parameters=parameters, body=body,
                               is_vararg=is_vararg, location=name_tok.location)

    # --------------------------------------------------------- statements
    def _parse_block(self) -> ast.Block:
        location = self._expect_punct("{").location
        statements: List[ast.Stmt] = []
        while not self._check_punct("}"):
            statements.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Block(statements=statements, location=location)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_punct(";"):
            self._advance()
            return ast.EmptyStmt(location=token.location)
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self._check_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return ast.Return(value=value, location=token.location)
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.Break(location=token.location)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.Continue(location=token.location)
        if self._at_type_start():
            return self._parse_declaration()
        expr = self._parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(expr=expr, location=token.location)

    def _parse_declaration(self) -> ast.Stmt:
        location = self._peek().location
        base = self._parse_base_type()
        declarations: List[ast.Stmt] = []
        while True:
            var_type: CType = base
            while self._accept_punct("*"):
                var_type = CPointer(var_type)
            name_tok = self._expect_ident()
            var_type = self._parse_array_suffix(var_type)
            initializer = None
            if self._accept_punct("="):
                initializer = self._parse_assignment_expr()
            declarations.append(ast.Declaration(
                name=name_tok.text, var_type=var_type,
                initializer=initializer, location=name_tok.location))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        if len(declarations) == 1:
            return declarations[0]
        return ast.Block(statements=declarations, location=location)

    def _parse_if(self) -> ast.If:
        location = self._advance().location  # if
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        then = self._parse_statement()
        otherwise = None
        if self._peek().is_keyword("else"):
            self._advance()
            otherwise = self._parse_statement()
        return ast.If(condition=condition, then=then, otherwise=otherwise,
                      location=location)

    def _parse_while(self) -> ast.While:
        location = self._advance().location
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.While(condition=condition, body=body, location=location)

    def _parse_do_while(self) -> ast.DoWhile:
        location = self._advance().location
        body = self._parse_statement()
        if not self._peek().is_keyword("while"):
            raise CompileError("expected 'while' after do-body",
                               self._peek().location)
        self._advance()
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(body=body, condition=condition, location=location)

    def _parse_for(self) -> ast.For:
        location = self._advance().location
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._check_punct(";"):
            if self._at_type_start():
                init = self._parse_declaration()
            else:
                expr = self._parse_expression()
                self._expect_punct(";")
                init = ast.ExprStmt(expr=expr, location=expr.location)
        else:
            self._advance()
        condition = None
        if not self._check_punct(";"):
            condition = self._parse_expression()
        self._expect_punct(";")
        step = None
        if not self._check_punct(")"):
            step = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.For(init=init, condition=condition, step=step, body=body,
                       location=location)

    # --------------------------------------------------------- expressions
    def _parse_expression(self) -> ast.Expr:
        expr = self._parse_assignment_expr()
        while self._accept_punct(","):
            # The comma operator evaluates both sides; model as a binary op.
            rhs = self._parse_assignment_expr()
            expr = ast.BinaryOp(op=",", lhs=expr, rhs=rhs,
                                location=expr.location)
        return expr

    def _parse_assignment_expr(self) -> ast.Expr:
        lhs = self._parse_conditional_expr()
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in _ASSIGN_OPS:
            self._advance()
            rhs = self._parse_assignment_expr()
            return ast.Assignment(op=token.text, target=lhs, value=rhs,
                                  location=token.location)
        return lhs

    def _parse_conditional_expr(self) -> ast.Expr:
        condition = self._parse_binary_expr(0)
        if self._accept_punct("?"):
            then = self._parse_expression()
            self._expect_punct(":")
            otherwise = self._parse_conditional_expr()
            return ast.Conditional(condition=condition, then=then,
                                   otherwise=otherwise,
                                   location=condition.location)
        return condition

    def _parse_binary_expr(self, min_precedence: int) -> ast.Expr:
        lhs = self._parse_unary_expr()
        while True:
            token = self._peek()
            if token.kind is not TokenKind.PUNCT:
                return lhs
            precedence = _BINARY_PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return lhs
            self._advance()
            rhs = self._parse_binary_expr(precedence + 1)
            if token.text in ("&&", "||"):
                lhs = ast.LogicalOp(op=token.text, lhs=lhs, rhs=rhs,
                                    location=token.location)
            else:
                lhs = ast.BinaryOp(op=token.text, lhs=lhs, rhs=rhs,
                                   location=token.location)

    def _parse_unary_expr(self) -> ast.Expr:
        token = self._peek()
        if token.is_punct("+", "-", "!", "~", "*", "&", "++", "--"):
            self._advance()
            operand = self._parse_unary_expr()
            if token.text == "+":
                return operand
            return ast.UnaryOp(op=token.text, operand=operand,
                               location=token.location)
        if token.is_keyword("sizeof"):
            self._advance()
            self._expect_punct("(")
            if self._at_type_start():
                target_type = self._parse_type()
                target_type = self._parse_array_suffix(target_type)
                self._expect_punct(")")
                return ast.SizeOf(target_type=target_type,
                                  location=token.location)
            operand = self._parse_expression()
            self._expect_punct(")")
            return ast.SizeOf(operand=operand, location=token.location)
        # A parenthesized type is a cast.
        if token.is_punct("(") and self._is_type_token(self._peek(1)):
            self._advance()
            target_type = self._parse_type()
            self._expect_punct(")")
            operand = self._parse_unary_expr()
            return ast.Cast(target_type=target_type, operand=operand,
                            location=token.location)
        return self._parse_postfix_expr()

    def _is_type_token(self, token: Token) -> bool:
        return token.is_keyword("void", "char", "short", "int", "long",
                                "unsigned", "signed", "_Bool", "const",
                                "struct")

    def _parse_postfix_expr(self) -> ast.Expr:
        expr = self._parse_primary_expr()
        while True:
            token = self._peek()
            if token.is_punct("["):
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.Index(base=expr, index=index,
                                 location=token.location)
            elif token.is_punct("."):
                self._advance()
                field = self._expect_ident()
                expr = ast.Member(base=expr, field_name=field.text,
                                  is_arrow=False, location=token.location)
            elif token.is_punct("->"):
                self._advance()
                field = self._expect_ident()
                expr = ast.Member(base=expr, field_name=field.text,
                                  is_arrow=True, location=token.location)
            elif token.is_punct("++", "--"):
                self._advance()
                expr = ast.PostfixOp(op=token.text, operand=expr,
                                     location=token.location)
            else:
                return expr

    def _parse_primary_expr(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            return ast.IntLiteral(value=token.value, location=token.location)
        if token.kind is TokenKind.CHAR_LITERAL:
            self._advance()
            return ast.CharLiteral(value=token.value, location=token.location)
        if token.kind is TokenKind.STRING_LITERAL:
            self._advance()
            return ast.StringLiteral(value=token.string, location=token.location)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._check_punct("("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._check_punct(")"):
                    while True:
                        args.append(self._parse_assignment_expr())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                return ast.Call(callee=token.text, args=args,
                                location=token.location)
            return ast.Identifier(name=token.text, location=token.location)
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise CompileError(f"unexpected token '{token.text}'", token.location)


def parse(source: str, filename: str = "<source>") -> ast.TranslationUnit:
    """Parse MiniC ``source`` into an AST."""
    return Parser(tokenize(source, filename)).parse_translation_unit()
