"""Semantic analysis for MiniC.

The analyzer walks the AST, resolves names against lexical scopes, computes
the C type of every expression (stored in ``Expr.ctype``), marks lvalues, and
reports type errors.  The lowering pass relies on these annotations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import ast
from .ctype import (
    CArray, CFunction, CInt, CPointer, CStruct, CType, CVoid, CHAR, INT, LONG,
    ULONG, VOID, decay, integer_promote, usual_arithmetic_conversion,
)
from .source import CompileError


class Scope:
    """A lexical scope mapping names to their declared types."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self.symbols: Dict[str, CType] = {}

    def declare(self, name: str, ctype: CType, node: ast.Node) -> None:
        if name in self.symbols:
            raise CompileError(f"redeclaration of '{name}'", node.location)
        self.symbols[name] = ctype

    def lookup(self, name: str) -> Optional[CType]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class SemanticAnalyzer:
    """Type checks a translation unit and annotates its expressions."""

    def __init__(self, unit: ast.TranslationUnit) -> None:
        self.unit = unit
        self.globals = Scope()
        self.functions: Dict[str, CFunction] = {}
        self.structs: Dict[str, CStruct] = {}
        self.current_return_type: CType = VOID
        self.loop_depth = 0

    # ------------------------------------------------------------------ API
    def analyze(self) -> ast.TranslationUnit:
        for struct in self.unit.structs:
            self.structs[struct.name] = CStruct(
                struct.name, tuple(struct.field_names),
                tuple(struct.field_types))
        for function in self.unit.functions:
            signature = CFunction(
                function.return_type,
                tuple(p.param_type for p in function.parameters),
                function.is_vararg)
            existing = self.functions.get(function.name)
            if existing is not None and function.body is not None and \
                    existing != signature:
                raise CompileError(
                    f"conflicting declaration of '{function.name}'",
                    function.location)
            self.functions[function.name] = signature
        for gvar in self.unit.globals:
            self.globals.declare(gvar.name, self._resolve(gvar.var_type), gvar)
            if gvar.initializer is not None:
                self._analyze_expr(gvar.initializer, self.globals)
        for function in self.unit.functions:
            if function.body is not None:
                self._analyze_function(function)
        return self.unit

    # ------------------------------------------------------------- helpers
    def _resolve(self, ctype: CType) -> CType:
        """Resolve forward-declared struct types to their full definitions."""
        if isinstance(ctype, CStruct) and not ctype.field_names:
            full = self.structs.get(ctype.name)
            if full is not None:
                return full
        if isinstance(ctype, CPointer):
            return CPointer(self._resolve(ctype.pointee))
        if isinstance(ctype, CArray):
            return CArray(self._resolve(ctype.element), ctype.count)
        return ctype

    def _analyze_function(self, function: ast.FunctionDef) -> None:
        scope = Scope(self.globals)
        for param in function.parameters:
            param.param_type = decay(self._resolve(param.param_type))
            scope.declare(param.name, param.param_type, param)
        self.current_return_type = self._resolve(function.return_type)
        assert function.body is not None
        self._analyze_block(function.body, scope)

    def _analyze_block(self, block: ast.Block, scope: Scope) -> None:
        inner = Scope(scope)
        for stmt in block.statements:
            self._analyze_stmt(stmt, inner)

    # ----------------------------------------------------------- statements
    def _analyze_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._analyze_block(stmt, scope)
        elif isinstance(stmt, ast.Declaration):
            stmt.var_type = self._resolve(stmt.var_type)
            if stmt.initializer is not None:
                init_type = self._analyze_expr(stmt.initializer, scope)
                self._check_assignable(stmt.var_type, init_type, stmt)
            scope.declare(stmt.name, stmt.var_type, stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._analyze_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._analyze_condition(stmt.condition, scope)
            self._analyze_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._analyze_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self._analyze_condition(stmt.condition, scope)
            self.loop_depth += 1
            self._analyze_stmt(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self.loop_depth += 1
            self._analyze_stmt(stmt.body, scope)
            self.loop_depth -= 1
            self._analyze_condition(stmt.condition, scope)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._analyze_stmt(stmt.init, inner)
            if stmt.condition is not None:
                self._analyze_condition(stmt.condition, inner)
            if stmt.step is not None:
                self._analyze_expr(stmt.step, inner)
            self.loop_depth += 1
            self._analyze_stmt(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value_type = self._analyze_expr(stmt.value, scope)
                if self.current_return_type.is_void:
                    raise CompileError("return with a value in void function",
                                       stmt.location)
                self._check_assignable(self.current_return_type, value_type,
                                       stmt)
            elif not self.current_return_type.is_void:
                raise CompileError("return without a value in non-void function",
                                   stmt.location)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                keyword = "break" if isinstance(stmt, ast.Break) else "continue"
                raise CompileError(f"'{keyword}' outside of a loop",
                                   stmt.location)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:  # pragma: no cover - defensive
            raise CompileError(f"unknown statement {type(stmt).__name__}",
                               stmt.location)

    def _analyze_condition(self, expr: ast.Expr, scope: Scope) -> None:
        ctype = self._analyze_expr(expr, scope)
        if not decay(ctype).is_scalar:
            raise CompileError(f"condition has non-scalar type {ctype}",
                               expr.location)

    # ---------------------------------------------------------- expressions
    def _analyze_expr(self, expr: ast.Expr, scope: Scope) -> CType:
        ctype = self._compute_type(expr, scope)
        expr.ctype = ctype
        return ctype

    def _compute_type(self, expr: ast.Expr, scope: Scope) -> CType:
        if isinstance(expr, ast.IntLiteral):
            return INT if -(2 ** 31) <= expr.value < 2 ** 31 else LONG
        if isinstance(expr, ast.CharLiteral):
            return INT
        if isinstance(expr, ast.StringLiteral):
            expr.is_lvalue = False
            return CPointer(CHAR)
        if isinstance(expr, ast.Identifier):
            ctype = scope.lookup(expr.name)
            if ctype is None:
                raise CompileError(f"use of undeclared identifier '{expr.name}'",
                                   expr.location)
            expr.is_lvalue = not isinstance(ctype, CFunction)
            return ctype
        if isinstance(expr, ast.UnaryOp):
            return self._type_unary(expr, scope)
        if isinstance(expr, ast.PostfixOp):
            operand_type = self._analyze_expr(expr.operand, scope)
            self._require_lvalue(expr.operand)
            if not decay(operand_type).is_scalar:
                raise CompileError(f"cannot apply '{expr.op}' to {operand_type}",
                                   expr.location)
            return operand_type
        if isinstance(expr, ast.BinaryOp):
            return self._type_binary(expr, scope)
        if isinstance(expr, ast.LogicalOp):
            self._analyze_condition(expr.lhs, scope)
            self._analyze_condition(expr.rhs, scope)
            return INT
        if isinstance(expr, ast.Assignment):
            return self._type_assignment(expr, scope)
        if isinstance(expr, ast.Conditional):
            self._analyze_condition(expr.condition, scope)
            then_type = decay(self._analyze_expr(expr.then, scope))
            else_type = decay(self._analyze_expr(expr.otherwise, scope))
            if then_type.is_integer and else_type.is_integer:
                return usual_arithmetic_conversion(then_type, else_type)
            if then_type.is_pointer:
                return then_type
            if else_type.is_pointer:
                return else_type
            if then_type == else_type:
                return then_type
            raise CompileError(
                f"incompatible branch types {then_type} and {else_type}",
                expr.location)
        if isinstance(expr, ast.Call):
            return self._type_call(expr, scope)
        if isinstance(expr, ast.Index):
            base_type = decay(self._analyze_expr(expr.base, scope))
            index_type = self._analyze_expr(expr.index, scope)
            if not isinstance(base_type, CPointer):
                raise CompileError(f"cannot index into {base_type}",
                                   expr.location)
            if not decay(index_type).is_integer:
                raise CompileError("array index must be an integer",
                                   expr.location)
            expr.is_lvalue = True
            return self._resolve(base_type.pointee)
        if isinstance(expr, ast.Member):
            base_type = self._analyze_expr(expr.base, scope)
            if expr.is_arrow:
                base_type = decay(base_type)
                if not isinstance(base_type, CPointer):
                    raise CompileError("'->' on non-pointer", expr.location)
                base_type = base_type.pointee
            base_type = self._resolve(base_type)
            if not isinstance(base_type, CStruct):
                raise CompileError(f"member access on non-struct {base_type}",
                                   expr.location)
            try:
                field_type = base_type.field_type(expr.field_name)
            except KeyError as exc:
                raise CompileError(str(exc), expr.location) from exc
            expr.is_lvalue = True
            return self._resolve(field_type)
        if isinstance(expr, ast.Cast):
            self._analyze_expr(expr.operand, scope)
            expr.target_type = self._resolve(expr.target_type)
            return expr.target_type
        if isinstance(expr, ast.SizeOf):
            if expr.operand is not None:
                self._analyze_expr(expr.operand, scope)
            if expr.target_type is not None:
                expr.target_type = self._resolve(expr.target_type)
            return ULONG
        raise CompileError(f"unknown expression {type(expr).__name__}",
                           expr.location)  # pragma: no cover - defensive

    def _type_unary(self, expr: ast.UnaryOp, scope: Scope) -> CType:
        operand_type = self._analyze_expr(expr.operand, scope)
        if expr.op in ("-", "~"):
            if not decay(operand_type).is_integer:
                raise CompileError(f"cannot apply '{expr.op}' to {operand_type}",
                                   expr.location)
            return integer_promote(operand_type)
        if expr.op == "!":
            if not decay(operand_type).is_scalar:
                raise CompileError("'!' requires a scalar operand",
                                   expr.location)
            return INT
        if expr.op == "*":
            pointer_type = decay(operand_type)
            if not isinstance(pointer_type, CPointer):
                raise CompileError(f"cannot dereference {operand_type}",
                                   expr.location)
            expr.is_lvalue = True
            return self._resolve(pointer_type.pointee)
        if expr.op == "&":
            self._require_lvalue(expr.operand)
            return CPointer(operand_type)
        if expr.op in ("++", "--"):
            self._require_lvalue(expr.operand)
            if not decay(operand_type).is_scalar:
                raise CompileError(f"cannot apply '{expr.op}' to {operand_type}",
                                   expr.location)
            return operand_type
        raise CompileError(f"unknown unary operator '{expr.op}'",
                           expr.location)  # pragma: no cover - defensive

    def _type_binary(self, expr: ast.BinaryOp, scope: Scope) -> CType:
        lhs_type = decay(self._analyze_expr(expr.lhs, scope))
        rhs_type = decay(self._analyze_expr(expr.rhs, scope))
        op = expr.op
        if op == ",":
            return rhs_type
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if lhs_type.is_pointer or rhs_type.is_pointer:
                return INT
            if lhs_type.is_integer and rhs_type.is_integer:
                return INT
            raise CompileError(
                f"cannot compare {lhs_type} and {rhs_type}", expr.location)
        if op in ("<<", ">>"):
            if not (lhs_type.is_integer and rhs_type.is_integer):
                raise CompileError("shift requires integer operands",
                                   expr.location)
            return integer_promote(lhs_type)
        if op in ("+", "-"):
            if lhs_type.is_pointer and rhs_type.is_integer:
                return lhs_type
            if op == "+" and lhs_type.is_integer and rhs_type.is_pointer:
                return rhs_type
            if op == "-" and lhs_type.is_pointer and rhs_type.is_pointer:
                return LONG
        if op in ("+", "-", "*", "/", "%", "&", "|", "^"):
            if lhs_type.is_integer and rhs_type.is_integer:
                return usual_arithmetic_conversion(lhs_type, rhs_type)
            raise CompileError(
                f"invalid operands to '{op}': {lhs_type} and {rhs_type}",
                expr.location)
        raise CompileError(f"unknown binary operator '{op}'",
                           expr.location)  # pragma: no cover - defensive

    def _type_assignment(self, expr: ast.Assignment, scope: Scope) -> CType:
        target_type = self._analyze_expr(expr.target, scope)
        value_type = self._analyze_expr(expr.value, scope)
        self._require_lvalue(expr.target)
        if expr.op == "=":
            self._check_assignable(target_type, value_type, expr)
        else:
            # Compound assignment: the implied binary operation must be valid.
            if not decay(target_type).is_scalar:
                raise CompileError(
                    f"invalid compound assignment to {target_type}",
                    expr.location)
        return target_type

    def _type_call(self, expr: ast.Call, scope: Scope) -> CType:
        signature = self.functions.get(expr.callee)
        if signature is None:
            raise CompileError(f"call to undeclared function '{expr.callee}'",
                               expr.location)
        arg_types = [self._analyze_expr(arg, scope) for arg in expr.args]
        expected = len(signature.param_types)
        if signature.is_vararg:
            if len(arg_types) < expected:
                raise CompileError(
                    f"too few arguments to '{expr.callee}'", expr.location)
        elif len(arg_types) != expected:
            raise CompileError(
                f"'{expr.callee}' expects {expected} arguments, got "
                f"{len(arg_types)}", expr.location)
        for param_type, (arg, arg_type) in zip(signature.param_types,
                                               zip(expr.args, arg_types)):
            self._check_assignable(decay(self._resolve(param_type)),
                                   arg_type, arg)
        return self._resolve(signature.return_type)

    # ------------------------------------------------------------- checks
    def _require_lvalue(self, expr: ast.Expr) -> None:
        if not expr.is_lvalue:
            raise CompileError("expression is not assignable", expr.location)

    def _check_assignable(self, target: CType, value: CType,
                          node: ast.Node) -> None:
        target = decay(target)
        value = decay(value)
        if target.is_integer and value.is_integer:
            return
        if target.is_pointer and value.is_pointer:
            return
        if target.is_pointer and value.is_integer:
            # Allow assigning integer constants (e.g. 0) to pointers.
            return
        if target.is_integer and value.is_pointer:
            return
        if target == value:
            return
        raise CompileError(f"cannot assign {value} to {target}", node.location)


def analyze(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Run semantic analysis on ``unit`` in place and return it."""
    return SemanticAnalyzer(unit).analyze()
