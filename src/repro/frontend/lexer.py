"""Lexer for MiniC, the C-like input language of the reproduction.

MiniC covers the constructs that matter for the paper's experiments: integer
types of several widths and signedness, pointers, arrays, structs, the usual
expression operators, control flow (if/while/for/do/break/continue/return),
string and character literals, and function definitions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from .source import CompileError, SourceLocation


class TokenKind(enum.Enum):
    IDENT = "identifier"
    KEYWORD = "keyword"
    INT_LITERAL = "integer"
    CHAR_LITERAL = "character"
    STRING_LITERAL = "string"
    PUNCT = "punctuation"
    EOF = "eof"


KEYWORDS = {
    "void", "char", "short", "int", "long", "unsigned", "signed", "_Bool",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "struct", "sizeof", "extern", "static", "const",
}

# Longest first so that the scanner is greedy.
PUNCTUATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~", "?", ":",
    ";", ",", "(", ")", "{", "}", "[", "]", ".",
]


@dataclass
class Token:
    kind: TokenKind
    text: str
    location: SourceLocation
    value: int = 0  # numeric value for INT_LITERAL / CHAR_LITERAL
    string: bytes = b""  # decoded bytes for STRING_LITERAL

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, *texts: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in texts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r})"


_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


class Lexer:
    """Converts MiniC source text into a token stream."""

    def __init__(self, source: str, filename: str = "<source>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------ API
    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------- internal
    def _location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance()
                self._advance()
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
                else:
                    raise CompileError("unterminated block comment",
                                       self._location())
            elif ch == "#":
                # Preprocessor directives are ignored (the workloads do not
                # rely on them; headers are resolved by the driver).
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        location = self._location()
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", location)
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._lex_identifier(location)
        if ch.isdigit():
            return self._lex_number(location)
        if ch == "'":
            return self._lex_char(location)
        if ch == '"':
            return self._lex_string(location)
        return self._lex_punct(location)

    def _lex_identifier(self, location: SourceLocation) -> Token:
        start = self.pos
        while self.pos < len(self.source) and \
                (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.source[start:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, location)

    def _lex_number(self, location: SourceLocation) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance()
            self._advance()
            while self.pos < len(self.source) and \
                    self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start:self.pos]
            value = int(text, 16)
        else:
            while self.pos < len(self.source) and self._peek().isdigit():
                self._advance()
            text = self.source[start:self.pos]
            value = int(text, 10)
        # Integer suffixes are accepted and ignored (type comes from context).
        while self.pos < len(self.source) and self._peek() in "uUlL":
            self._advance()
            text = self.source[start:self.pos]
        return Token(TokenKind.INT_LITERAL, text, location, value=value)

    def _read_escaped_char(self) -> int:
        ch = self._advance()
        if ch != "\\":
            return ord(ch)
        esc = self._advance()
        if esc == "x":
            digits = ""
            while self.pos < len(self.source) and \
                    self._peek() in "0123456789abcdefABCDEF":
                digits += self._advance()
            if not digits:
                raise CompileError("invalid hex escape", self._location())
            return int(digits, 16) & 0xFF
        if esc in _ESCAPES:
            return _ESCAPES[esc]
        raise CompileError(f"unknown escape sequence '\\{esc}'", self._location())

    def _lex_char(self, location: SourceLocation) -> Token:
        self._advance()  # opening quote
        if self.pos >= len(self.source):
            raise CompileError("unterminated character literal", location)
        value = self._read_escaped_char()
        if self.pos >= len(self.source) or self._peek() != "'":
            raise CompileError("unterminated character literal", location)
        self._advance()  # closing quote
        return Token(TokenKind.CHAR_LITERAL, f"'{chr(value)}'", location,
                     value=value)

    def _lex_string(self, location: SourceLocation) -> Token:
        self._advance()  # opening quote
        data = bytearray()
        while True:
            if self.pos >= len(self.source):
                raise CompileError("unterminated string literal", location)
            if self._peek() == '"':
                self._advance()
                break
            data.append(self._read_escaped_char())
        return Token(TokenKind.STRING_LITERAL, "", location, string=bytes(data))

    def _lex_punct(self, location: SourceLocation) -> Token:
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                for _ in punct:
                    self._advance()
                return Token(TokenKind.PUNCT, punct, location)
        raise CompileError(f"unexpected character {self._peek()!r}", location)


def tokenize(source: str, filename: str = "<source>") -> List[Token]:
    """Tokenize ``source`` and return the token list (ending with EOF)."""
    return Lexer(source, filename).tokenize()
