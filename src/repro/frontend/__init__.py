"""repro.frontend — the MiniC front end (lexer, parser, sema, lowering)."""

from typing import Optional

from . import ast
from .ctype import (
    CArray, CFunction, CInt, CPointer, CStruct, CType, CVoid,
    BOOL, CHAR, UCHAR, SHORT, USHORT, INT, UINT, LONG, ULONG, VOID,
    decay, integer_promote, usual_arithmetic_conversion,
)
from .lexer import Lexer, Token, TokenKind, tokenize
from .parser import Parser, parse
from .sema import SemanticAnalyzer, analyze
from .lowering import Codegen, lower
from .source import CompileError, SourceLocation

from ..ir import Module


def compile_to_ir(source: str, module_name: str = "module",
                  filename: str = "<source>") -> Module:
    """Compile MiniC ``source`` to an unoptimized IR module (like ``-O0``)."""
    unit = parse(source, filename)
    analyze(unit)
    return lower(unit, module_name)


__all__ = [
    "ast",
    "CArray", "CFunction", "CInt", "CPointer", "CStruct", "CType", "CVoid",
    "BOOL", "CHAR", "UCHAR", "SHORT", "USHORT", "INT", "UINT", "LONG",
    "ULONG", "VOID",
    "decay", "integer_promote", "usual_arithmetic_conversion",
    "Lexer", "Token", "TokenKind", "tokenize",
    "Parser", "parse",
    "SemanticAnalyzer", "analyze",
    "Codegen", "lower",
    "CompileError", "SourceLocation",
    "compile_to_ir",
]
