"""Lowering from the MiniC AST to the repro IR.

The lowering is deliberately naive — every local variable lives in an
``alloca`` and every access goes through memory — exactly like an
unoptimized clang ``-O0`` build.  All cleverness (mem2reg, folding, control
flow simplification) is the job of the optimization passes, which is what the
paper studies.

GEP convention: ``getelementptr`` takes a single index operand holding a
*byte* offset; the result points ``offset`` bytes past the base pointer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import ast
from .ctype import (
    CArray, CFunction, CInt, CPointer, CStruct, CType, CVoid, CHAR, INT, LONG,
    ULONG, VOID, decay, integer_promote, usual_arithmetic_conversion,
)
from .source import CompileError
from ..ir import (
    BasicBlock, ConstantArray, ConstantInt, Function, FunctionType, GEPInst,
    ICmpPredicate, IRBuilder, IntType, Module, Opcode, PointerType, Type,
    Value, I1, I8, I32, I64, VOID as IR_VOID, int_type,
)


class LoweringError(CompileError):
    """Raised when the AST cannot be lowered (should be prevented by sema)."""


class _FunctionLowering:
    """Lowers one function body."""

    def __init__(self, codegen: "Codegen", function: Function,
                 definition: ast.FunctionDef) -> None:
        self.codegen = codegen
        self.module = codegen.module
        self.function = function
        self.definition = definition
        self.builder = IRBuilder()
        #: name -> (address value, ctype)
        self.locals: Dict[str, Tuple[Value, CType]] = {}
        self.break_targets: List[BasicBlock] = []
        self.continue_targets: List[BasicBlock] = []

    # ------------------------------------------------------------------ API
    def lower(self) -> None:
        entry = BasicBlock("entry")
        self.function.append_block(entry)
        self.builder.set_insert_point(entry)
        for param, arg in zip(self.definition.parameters,
                              self.function.arguments):
            slot = self.builder.alloca(arg.type, name=f"{param.name}.addr")
            slot.metadata["source.type"] = str(param.param_type)
            self.builder.store(arg, slot)
            self.locals[param.name] = (slot, param.param_type)
        assert self.definition.body is not None
        self.lower_block(self.definition.body)
        self._terminate_open_block()

    def _terminate_open_block(self) -> None:
        block = self.builder.block
        assert block is not None
        if block.terminator is not None:
            return
        return_type = self.function.return_type
        if return_type.is_void:
            self.builder.ret()
        else:
            # Falling off the end of a non-void function returns 0, which
            # matches what the workloads rely on for main().
            assert isinstance(return_type, IntType)
            self.builder.ret(ConstantInt(return_type, 0))

    # ------------------------------------------------------------ statements
    def lower_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        current = self.builder.block
        if current is not None and current.terminator is not None:
            # Unreachable code after return/break/continue: emit into a fresh
            # dead block so lowering stays simple; DCE removes it later.
            dead = BasicBlock(self.function.next_name("dead"))
            self.function.append_block(dead)
            self.builder.set_insert_point(dead)

        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.Declaration):
            self._lower_declaration(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            self.builder.br(self.break_targets[-1])
        elif isinstance(stmt, ast.Continue):
            self.builder.br(self.continue_targets[-1])
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:  # pragma: no cover - defensive
            raise LoweringError(f"cannot lower {type(stmt).__name__}",
                                stmt.location)

    def _lower_declaration(self, stmt: ast.Declaration) -> None:
        ir_type = stmt.var_type.to_ir()
        slot = self.builder.alloca(ir_type, name=f"{stmt.name}.addr")
        slot.metadata["source.type"] = str(stmt.var_type)
        self.locals[stmt.name] = (slot, stmt.var_type)
        if stmt.initializer is not None:
            value, value_type = self.lower_expr(stmt.initializer)
            value = self.convert(value, value_type, stmt.var_type)
            self.builder.store(value, slot)

    def _lower_if(self, stmt: ast.If) -> None:
        condition = self.lower_condition(stmt.condition)
        then_block = self._new_block("if.then")
        merge_block = self._new_block("if.end")
        else_block = merge_block
        if stmt.otherwise is not None:
            else_block = self._new_block("if.else")
        self.builder.cond_br(condition, then_block, else_block)

        self.builder.set_insert_point(then_block)
        self.lower_stmt(stmt.then)
        self._branch_if_open(merge_block)

        if stmt.otherwise is not None:
            self.builder.set_insert_point(else_block)
            self.lower_stmt(stmt.otherwise)
            self._branch_if_open(merge_block)

        self.builder.set_insert_point(merge_block)

    def _lower_while(self, stmt: ast.While) -> None:
        cond_block = self._new_block("while.cond")
        body_block = self._new_block("while.body")
        end_block = self._new_block("while.end")
        self.builder.br(cond_block)

        self.builder.set_insert_point(cond_block)
        condition = self.lower_condition(stmt.condition)
        self.builder.cond_br(condition, body_block, end_block)

        self.builder.set_insert_point(body_block)
        self.break_targets.append(end_block)
        self.continue_targets.append(cond_block)
        self.lower_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        self._branch_if_open(cond_block)

        self.builder.set_insert_point(end_block)

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        body_block = self._new_block("do.body")
        cond_block = self._new_block("do.cond")
        end_block = self._new_block("do.end")
        self.builder.br(body_block)

        self.builder.set_insert_point(body_block)
        self.break_targets.append(end_block)
        self.continue_targets.append(cond_block)
        self.lower_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        self._branch_if_open(cond_block)

        self.builder.set_insert_point(cond_block)
        condition = self.lower_condition(stmt.condition)
        self.builder.cond_br(condition, body_block, end_block)

        self.builder.set_insert_point(end_block)

    def _lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        cond_block = self._new_block("for.cond")
        body_block = self._new_block("for.body")
        step_block = self._new_block("for.step")
        end_block = self._new_block("for.end")
        self.builder.br(cond_block)

        self.builder.set_insert_point(cond_block)
        if stmt.condition is not None:
            condition = self.lower_condition(stmt.condition)
            self.builder.cond_br(condition, body_block, end_block)
        else:
            self.builder.br(body_block)

        self.builder.set_insert_point(body_block)
        self.break_targets.append(end_block)
        self.continue_targets.append(step_block)
        self.lower_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        self._branch_if_open(step_block)

        self.builder.set_insert_point(step_block)
        if stmt.step is not None:
            self.lower_expr(stmt.step)
        self.builder.br(cond_block)

        self.builder.set_insert_point(end_block)

    def _lower_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            self.builder.ret()
            return
        value, value_type = self.lower_expr(stmt.value)
        return_ctype = self.codegen.function_ctypes[self.definition.name].return_type
        value = self.convert(value, value_type, return_ctype)
        self.builder.ret(value)

    def _new_block(self, name: str) -> BasicBlock:
        block = BasicBlock(self.function.next_name(name))
        self.function.append_block(block)
        return block

    def _branch_if_open(self, target: BasicBlock) -> None:
        block = self.builder.block
        assert block is not None
        if block.terminator is None:
            self.builder.br(target)

    # ----------------------------------------------------------- expressions
    def lower_condition(self, expr: ast.Expr) -> Value:
        """Lower ``expr`` to an ``i1`` truth value."""
        value, ctype = self.lower_expr(expr)
        return self._to_bool(value, ctype)

    def _to_bool(self, value: Value, ctype: CType) -> Value:
        if value.type == I1:
            return value
        if isinstance(value.type, PointerType):
            as_int = self.builder.ptrtoint(value, I64)
            return self.builder.icmp_ne(as_int, ConstantInt(I64, 0))
        assert isinstance(value.type, IntType)
        return self.builder.icmp_ne(value, ConstantInt(value.type, 0))

    def lower_expr(self, expr: ast.Expr) -> Tuple[Value, CType]:
        """Lower an expression to (value, source type)."""
        assert expr.ctype is not None, "expression was not type checked"
        if isinstance(expr, ast.IntLiteral):
            ctype = expr.ctype
            assert isinstance(ctype, CInt)
            return ConstantInt(int_type(ctype.width), expr.value), ctype
        if isinstance(expr, ast.CharLiteral):
            return ConstantInt(I32, expr.value), INT
        if isinstance(expr, ast.StringLiteral):
            return self.codegen.string_pointer(self.builder, expr.value), \
                CPointer(CHAR)
        if isinstance(expr, ast.Identifier):
            address, ctype = self._lookup(expr)
            if isinstance(ctype, CArray):
                # Arrays decay to a pointer to their first element.
                element_ir = ctype.element.to_ir()
                ptr = self.builder.gep(address, [ConstantInt(I64, 0)],
                                       element_ir)
                return ptr, CPointer(ctype.element)
            if isinstance(ctype, CStruct):
                return address, ctype
            return self.builder.load(address, name=expr.name), ctype
        if isinstance(expr, ast.UnaryOp):
            return self._lower_unary(expr)
        if isinstance(expr, ast.PostfixOp):
            return self._lower_postfix(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._lower_binary(expr)
        if isinstance(expr, ast.LogicalOp):
            return self._lower_logical(expr)
        if isinstance(expr, ast.Assignment):
            return self._lower_assignment(expr)
        if isinstance(expr, ast.Conditional):
            return self._lower_conditional(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, (ast.Index, ast.Member)):
            address, ctype = self.lower_lvalue(expr)
            if isinstance(ctype, CArray):
                element_ir = ctype.element.to_ir()
                ptr = self.builder.gep(address, [ConstantInt(I64, 0)],
                                       element_ir)
                return ptr, CPointer(ctype.element)
            if isinstance(ctype, CStruct):
                return address, ctype
            return self.builder.load(address), ctype
        if isinstance(expr, ast.Cast):
            value, value_type = self.lower_expr(expr.operand)
            return self.convert(value, value_type, expr.target_type), \
                expr.target_type
        if isinstance(expr, ast.SizeOf):
            if expr.target_type is not None:
                size = expr.target_type.size_in_bytes()
            else:
                assert expr.operand is not None and expr.operand.ctype is not None
                size = expr.operand.ctype.size_in_bytes()
            return ConstantInt(I64, size), ULONG
        raise LoweringError(f"cannot lower {type(expr).__name__}",
                            expr.location)  # pragma: no cover - defensive

    # ------------------------------------------------------------- lvalues
    def lower_lvalue(self, expr: ast.Expr) -> Tuple[Value, CType]:
        """Lower an lvalue expression to (address, ctype of the object)."""
        if isinstance(expr, ast.Identifier):
            return self._lookup(expr)
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            value, ctype = self.lower_expr(expr.operand)
            pointer_type = decay(ctype)
            assert isinstance(pointer_type, CPointer)
            return value, self.codegen.resolve_struct(pointer_type.pointee)
        if isinstance(expr, ast.Index):
            base, base_ctype = self.lower_expr(expr.base)
            base_ctype = decay(base_ctype)
            assert isinstance(base_ctype, CPointer)
            element = self.codegen.resolve_struct(base_ctype.pointee)
            index, index_ctype = self.lower_expr(expr.index)
            index = self.convert(index, index_ctype, LONG)
            offset = self.builder.mul(
                index, ConstantInt(I64, element.size_in_bytes()))
            address = self.builder.gep(base, [offset], element.to_ir())
            return address, element
        if isinstance(expr, ast.Member):
            if expr.is_arrow:
                base, base_ctype = self.lower_expr(expr.base)
                base_ctype = decay(base_ctype)
                assert isinstance(base_ctype, CPointer)
                struct = self.codegen.resolve_struct(base_ctype.pointee)
            else:
                base, struct = self.lower_lvalue(expr.base)
                struct = self.codegen.resolve_struct(struct)
            assert isinstance(struct, CStruct)
            index = struct.field_index(expr.field_name)
            field_ctype = self.codegen.resolve_struct(
                struct.field_types[index])
            offset = struct.to_ir().field_offset(index)
            address = self.builder.gep(base, [ConstantInt(I64, offset)],
                                       field_ctype.to_ir())
            return address, field_ctype
        raise LoweringError("expression is not an lvalue", expr.location)

    def _lookup(self, expr: ast.Identifier) -> Tuple[Value, CType]:
        if expr.name in self.locals:
            return self.locals[expr.name]
        if expr.name in self.codegen.global_ctypes:
            return (self.module.get_global(expr.name),
                    self.codegen.global_ctypes[expr.name])
        raise LoweringError(f"unknown identifier '{expr.name}'", expr.location)

    # ------------------------------------------------------------ operators
    def _lower_unary(self, expr: ast.UnaryOp) -> Tuple[Value, CType]:
        if expr.op == "*":
            address, ctype = self.lower_lvalue(expr)
            if isinstance(ctype, (CStruct, CArray)):
                return address, ctype
            return self.builder.load(address), ctype
        if expr.op == "&":
            address, ctype = self.lower_lvalue(expr.operand)
            return address, CPointer(ctype)
        if expr.op in ("++", "--"):
            address, ctype = self.lower_lvalue(expr.operand)
            old = self.builder.load(address)
            new = self._increment(old, ctype, expr.op == "++")
            self.builder.store(new, address)
            return new, ctype
        value, value_type = self.lower_expr(expr.operand)
        result_type = expr.ctype
        assert result_type is not None
        if expr.op == "-":
            value = self.convert(value, value_type, result_type)
            return self.builder.neg(value), result_type
        if expr.op == "~":
            value = self.convert(value, value_type, result_type)
            return self.builder.not_(value), result_type
        if expr.op == "!":
            truth = self._to_bool(value, value_type)
            flipped = self.builder.xor(truth, ConstantInt(I1, 1))
            return self.builder.zext(flipped, I32), INT
        raise LoweringError(f"unknown unary operator '{expr.op}'",
                            expr.location)  # pragma: no cover - defensive

    def _lower_postfix(self, expr: ast.PostfixOp) -> Tuple[Value, CType]:
        address, ctype = self.lower_lvalue(expr.operand)
        old = self.builder.load(address)
        new = self._increment(old, ctype, expr.op == "++")
        self.builder.store(new, address)
        return old, ctype

    def _increment(self, value: Value, ctype: CType, is_increment: bool) -> Value:
        ctype = decay(ctype)
        if isinstance(ctype, CPointer):
            element = self.codegen.resolve_struct(ctype.pointee)
            step = element.size_in_bytes()
            offset = ConstantInt(I64, step if is_increment else -step)
            return self.builder.gep(value, [offset], element.to_ir())
        assert isinstance(value.type, IntType)
        one = ConstantInt(value.type, 1)
        if is_increment:
            return self.builder.add(value, one)
        return self.builder.sub(value, one)

    def _lower_binary(self, expr: ast.BinaryOp) -> Tuple[Value, CType]:
        op = expr.op
        if op == ",":
            self.lower_expr(expr.lhs)
            return self.lower_expr(expr.rhs)
        lhs, lhs_type = self.lower_expr(expr.lhs)
        rhs, rhs_type = self.lower_expr(expr.rhs)
        return self._lower_binary_values(op, lhs, decay(lhs_type),
                                         rhs, decay(rhs_type))

    def _lower_binary_values(self, op: str, lhs: Value, lhs_type: CType,
                             rhs: Value, rhs_type: CType) -> Tuple[Value, CType]:
        # Pointer arithmetic and comparisons.
        if isinstance(lhs_type, CPointer) or isinstance(rhs_type, CPointer):
            return self._lower_pointer_op(op, lhs, lhs_type, rhs, rhs_type)
        assert isinstance(lhs_type, CInt) and isinstance(rhs_type, CInt)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            common = usual_arithmetic_conversion(lhs_type, rhs_type)
            lhs = self.convert(lhs, lhs_type, common)
            rhs = self.convert(rhs, rhs_type, common)
            predicate = _comparison_predicate(op, common.signed)
            result = self.builder.icmp(predicate, lhs, rhs)
            return self.builder.zext(result, I32), INT
        if op in ("<<", ">>"):
            result_type = integer_promote(lhs_type)
            assert isinstance(result_type, CInt)
            lhs = self.convert(lhs, lhs_type, result_type)
            rhs = self.convert(rhs, rhs_type, result_type)
            if op == "<<":
                return self.builder.shl(lhs, rhs), result_type
            if result_type.signed:
                return self.builder.ashr(lhs, rhs), result_type
            return self.builder.lshr(lhs, rhs), result_type
        common = usual_arithmetic_conversion(lhs_type, rhs_type)
        assert isinstance(common, CInt)
        lhs = self.convert(lhs, lhs_type, common)
        rhs = self.convert(rhs, rhs_type, common)
        opcode = _arithmetic_opcode(op, common.signed)
        result = self.builder._binary(opcode, lhs, rhs)
        return result, common

    def _lower_pointer_op(self, op: str, lhs: Value, lhs_type: CType,
                          rhs: Value, rhs_type: CType) -> Tuple[Value, CType]:
        if op in ("==", "!=", "<", ">", "<=", ">="):
            lhs_int = self._pointer_as_int(lhs, lhs_type)
            rhs_int = self._pointer_as_int(rhs, rhs_type)
            predicate = _comparison_predicate(op, signed=False)
            result = self.builder.icmp(predicate, lhs_int, rhs_int)
            return self.builder.zext(result, I32), INT
        if op == "+" and isinstance(lhs_type, CPointer) and rhs_type.is_integer:
            return self._pointer_add(lhs, lhs_type, rhs, rhs_type, negate=False)
        if op == "+" and isinstance(rhs_type, CPointer) and lhs_type.is_integer:
            return self._pointer_add(rhs, rhs_type, lhs, lhs_type, negate=False)
        if op == "-" and isinstance(lhs_type, CPointer) and rhs_type.is_integer:
            return self._pointer_add(lhs, lhs_type, rhs, rhs_type, negate=True)
        if op == "-" and isinstance(lhs_type, CPointer) and \
                isinstance(rhs_type, CPointer):
            element = self.codegen.resolve_struct(lhs_type.pointee)
            lhs_int = self.builder.ptrtoint(lhs, I64)
            rhs_int = self.builder.ptrtoint(rhs, I64)
            diff = self.builder.sub(lhs_int, rhs_int)
            size = ConstantInt(I64, max(1, element.size_in_bytes()))
            return self.builder.sdiv(diff, size), LONG
        raise LoweringError(f"unsupported pointer operation '{op}'")

    def _pointer_as_int(self, value: Value, ctype: CType) -> Value:
        if isinstance(value.type, PointerType):
            return self.builder.ptrtoint(value, I64)
        assert isinstance(ctype, CInt)
        return self.convert(value, ctype, ULONG)

    def _pointer_add(self, pointer: Value, pointer_type: CPointer,
                     offset: Value, offset_type: CType,
                     negate: bool) -> Tuple[Value, CType]:
        element = self.codegen.resolve_struct(pointer_type.pointee)
        offset = self.convert(offset, offset_type, LONG)
        scaled = self.builder.mul(
            offset, ConstantInt(I64, max(1, element.size_in_bytes())))
        if negate:
            scaled = self.builder.neg(scaled)
        address = self.builder.gep(pointer, [scaled], element.to_ir())
        return address, pointer_type

    #: Binary operators whose evaluation can never trap or write memory.
    _PURE_BINARY_OPS = frozenset(
        {"+", "-", "*", "&", "|", "^", "<<", ">>",
         "==", "!=", "<", "<=", ">", ">="})

    def _is_speculatable(self, expr: ast.Expr) -> bool:
        """Whether evaluating ``expr`` unconditionally is unobservable.

        A short-circuit operand that cannot trap, write memory, or call a
        function may be evaluated speculatively, which lets ``&&``/``||``
        lower to straight-line bitwise ``and``/``or`` instead of a branch
        diamond.  Division and modulo are excluded (a zero divisor is a
        runtime error that short-circuiting may be guarding against);
        dereferences, indexing, member access, assignments, and calls are
        excluded for the same reason.  Reads of scalar locals are allowed:
        a load from a stack slot cannot trap in the flat memory model.
        """
        if isinstance(expr, (ast.IntLiteral, ast.CharLiteral)):
            return True
        if isinstance(expr, ast.Identifier):
            return isinstance(expr.ctype, (CInt, CPointer))
        if isinstance(expr, ast.UnaryOp):
            return expr.op in ("!", "-", "~", "+") and \
                self._is_speculatable(expr.operand)
        if isinstance(expr, ast.BinaryOp):
            return expr.op in self._PURE_BINARY_OPS and \
                self._is_speculatable(expr.lhs) and \
                self._is_speculatable(expr.rhs)
        if isinstance(expr, ast.LogicalOp):
            return self._is_speculatable(expr.lhs) and \
                self._is_speculatable(expr.rhs)
        if isinstance(expr, ast.Cast):
            return self._is_speculatable(expr.operand)
        return False

    def _lower_logical(self, expr: ast.LogicalOp) -> Tuple[Value, CType]:
        """Short-circuit ``&&`` / ``||``.

        When the right-hand side is speculation-safe (no traps, no side
        effects, no calls) the operator is lowered branch-free, as a bitwise
        ``and``/``or`` of the two ``i1`` truth values — the same fold GCC
        and Clang apply to cheap short-circuit operands.  For a verifier
        this is the single most valuable compilation choice the front end
        can make: every avoided branch halves the path count of the code
        downstream, at every optimization level including ``-O0``.

        Otherwise the classic lowering applies: a result slot plus a branch
        diamond that skips the right-hand side.
        """
        if self._is_speculatable(expr.rhs):
            lhs = self.lower_condition(expr.lhs)
            rhs = self.lower_condition(expr.rhs)
            if expr.op == "&&":
                combined = self.builder.and_(lhs, rhs)
            else:
                combined = self.builder.or_(lhs, rhs)
            return self.builder.zext(combined, I32), INT

        result_slot = self.builder.alloca(I32, name="logical.result")
        rhs_block = self._new_block("logical.rhs")
        end_block = self._new_block("logical.end")

        lhs = self.lower_condition(expr.lhs)
        lhs_int = self.builder.zext(lhs, I32)
        self.builder.store(lhs_int, result_slot)
        if expr.op == "&&":
            self.builder.cond_br(lhs, rhs_block, end_block)
        else:
            self.builder.cond_br(lhs, end_block, rhs_block)

        self.builder.set_insert_point(rhs_block)
        rhs = self.lower_condition(expr.rhs)
        rhs_int = self.builder.zext(rhs, I32)
        self.builder.store(rhs_int, result_slot)
        self.builder.br(end_block)

        self.builder.set_insert_point(end_block)
        return self.builder.load(result_slot), INT

    def _lower_conditional(self, expr: ast.Conditional) -> Tuple[Value, CType]:
        result_ctype = expr.ctype
        assert result_ctype is not None
        ir_type = result_ctype.to_ir()
        result_slot = self.builder.alloca(ir_type, name="cond.result")
        then_block = self._new_block("cond.then")
        else_block = self._new_block("cond.else")
        end_block = self._new_block("cond.end")

        condition = self.lower_condition(expr.condition)
        self.builder.cond_br(condition, then_block, else_block)

        self.builder.set_insert_point(then_block)
        then_value, then_type = self.lower_expr(expr.then)
        self.builder.store(self.convert(then_value, then_type, result_ctype),
                           result_slot)
        self.builder.br(end_block)

        self.builder.set_insert_point(else_block)
        else_value, else_type = self.lower_expr(expr.otherwise)
        self.builder.store(self.convert(else_value, else_type, result_ctype),
                           result_slot)
        self.builder.br(end_block)

        self.builder.set_insert_point(end_block)
        return self.builder.load(result_slot), result_ctype

    def _lower_assignment(self, expr: ast.Assignment) -> Tuple[Value, CType]:
        address, target_type = self.lower_lvalue(expr.target)
        if expr.op == "=":
            value, value_type = self.lower_expr(expr.value)
            value = self.convert(value, value_type, target_type)
        else:
            op = expr.op[:-1]  # "+=" -> "+"
            current = self.builder.load(address)
            rhs, rhs_type = self.lower_expr(expr.value)
            result, result_type = self._lower_binary_values(
                op, current, decay(target_type), rhs, decay(rhs_type))
            value = self.convert(result, result_type, target_type)
        self.builder.store(value, address)
        return value, target_type

    def _lower_call(self, expr: ast.Call) -> Tuple[Value, CType]:
        callee = self.module.get_function_or_none(expr.callee)
        signature = self.codegen.function_ctypes.get(expr.callee)
        if callee is None or signature is None:
            raise LoweringError(f"call to unknown function '{expr.callee}'",
                                expr.location)
        args: List[Value] = []
        for i, arg in enumerate(expr.args):
            value, value_type = self.lower_expr(arg)
            if i < len(signature.param_types):
                param_type = decay(self.codegen.resolve_struct(
                    signature.param_types[i]))
                value = self.convert(value, value_type, param_type)
            args.append(value)
        result = self.builder.call(callee, args)
        return result, self.codegen.resolve_struct(signature.return_type)

    # ------------------------------------------------------------- casts
    def convert(self, value: Value, from_type: CType, to_type: CType) -> Value:
        """Convert ``value`` from ``from_type`` to ``to_type`` (C semantics)."""
        from_type = decay(from_type)
        to_type = decay(to_type)
        if from_type == to_type:
            return value
        if isinstance(to_type, CVoid):
            return value
        if isinstance(from_type, CInt) and isinstance(to_type, CInt):
            target_ir = int_type(to_type.width)
            if value.type == target_ir:
                return value
            assert isinstance(value.type, IntType)
            if value.type.width > to_type.width:
                return self.builder.trunc(value, target_ir)
            return self.builder.int_cast(value, target_ir, from_type.signed)
        if isinstance(from_type, CPointer) and isinstance(to_type, CPointer):
            return self.builder.bitcast(value, to_type.to_ir())
        if isinstance(from_type, CInt) and isinstance(to_type, CPointer):
            as_long = self.convert(value, from_type, ULONG)
            return self.builder.inttoptr(as_long, to_type.to_ir())
        if isinstance(from_type, CPointer) and isinstance(to_type, CInt):
            as_long = self.builder.ptrtoint(value, I64)
            return self.convert(as_long, ULONG, to_type)
        if isinstance(from_type, CArray) and isinstance(to_type, CPointer):
            return value
        raise LoweringError(f"cannot convert {from_type} to {to_type}")


def _comparison_predicate(op: str, signed: bool) -> ICmpPredicate:
    if op == "==":
        return ICmpPredicate.EQ
    if op == "!=":
        return ICmpPredicate.NE
    table_signed = {"<": ICmpPredicate.SLT, "<=": ICmpPredicate.SLE,
                    ">": ICmpPredicate.SGT, ">=": ICmpPredicate.SGE}
    table_unsigned = {"<": ICmpPredicate.ULT, "<=": ICmpPredicate.ULE,
                      ">": ICmpPredicate.UGT, ">=": ICmpPredicate.UGE}
    return (table_signed if signed else table_unsigned)[op]


def _arithmetic_opcode(op: str, signed: bool) -> Opcode:
    table = {
        "+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL,
        "&": Opcode.AND, "|": Opcode.OR, "^": Opcode.XOR,
    }
    if op in table:
        return table[op]
    if op == "/":
        return Opcode.SDIV if signed else Opcode.UDIV
    if op == "%":
        return Opcode.SREM if signed else Opcode.UREM
    raise LoweringError(f"unknown arithmetic operator '{op}'")


class Codegen:
    """Lowers a type-checked translation unit into an IR module."""

    def __init__(self, unit: ast.TranslationUnit, module_name: str = "module") -> None:
        self.unit = unit
        self.module = Module(module_name)
        self.function_ctypes: Dict[str, CFunction] = {}
        self.global_ctypes: Dict[str, CType] = {}
        self.structs: Dict[str, CStruct] = {}
        self._string_cache: Dict[bytes, Value] = {}

    def resolve_struct(self, ctype: CType) -> CType:
        """Resolve forward struct references left over from parsing."""
        if isinstance(ctype, CStruct) and not ctype.field_names:
            return self.structs.get(ctype.name, ctype)
        if isinstance(ctype, CPointer):
            return CPointer(self.resolve_struct(ctype.pointee))
        if isinstance(ctype, CArray):
            return CArray(self.resolve_struct(ctype.element), ctype.count)
        return ctype

    def string_pointer(self, builder: IRBuilder, data: bytes) -> Value:
        """Return an ``i8*`` to a (cached) global constant holding ``data``."""
        if data not in self._string_cache:
            name = self.module.unique_global_name(f"str.{len(self._string_cache)}")
            initializer = ConstantArray(I8, list(data) + [0])
            array_type = initializer.type
            gv = self.module.add_global(name, array_type, initializer,
                                        is_constant=True)
            self._string_cache[data] = gv
        gv = self._string_cache[data]
        return builder.gep(gv, [ConstantInt(I64, 0)], I8)

    def run(self) -> Module:
        for struct in self.unit.structs:
            self.structs[struct.name] = CStruct(
                struct.name, tuple(struct.field_names),
                tuple(struct.field_types))
        # Globals first so that function bodies can reference them.
        for gvar in self.unit.globals:
            ctype = self.resolve_struct(gvar.var_type)
            self.global_ctypes[gvar.name] = ctype
            initializer = None
            if isinstance(gvar.initializer, ast.IntLiteral) and \
                    isinstance(ctype, CInt):
                initializer = ConstantInt(int_type(ctype.width),
                                          gvar.initializer.value)
            self.module.add_global(gvar.name, ctype.to_ir(), initializer,
                                   gvar.is_const)
        # Declare every function (so calls across definition order work).
        for definition in self.unit.functions:
            signature = CFunction(
                self.resolve_struct(definition.return_type),
                tuple(self.resolve_struct(p.param_type)
                      for p in definition.parameters),
                definition.is_vararg)
            self.function_ctypes[definition.name] = signature
            if self.module.get_function_or_none(definition.name) is None:
                self.module.create_function(
                    definition.name, signature.to_ir(),
                    [p.name or f"arg{i}" for i, p in
                     enumerate(definition.parameters)])
        # Lower bodies.
        for definition in self.unit.functions:
            if definition.body is None:
                continue
            function = self.module.get_function(definition.name)
            if not function.is_declaration:
                raise LoweringError(
                    f"redefinition of function '{definition.name}'",
                    definition.location)
            _FunctionLowering(self, function, definition).lower()
        return self.module


def lower(unit: ast.TranslationUnit, module_name: str = "module") -> Module:
    """Lower a type-checked translation unit to an IR module."""
    return Codegen(unit, module_name).run()
