"""MiniC's source-level type system.

The front end tracks signedness (which the IR does not), array bounds, and
struct layouts, and knows how to map each source type onto an IR type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir import types as irtypes


class CType:
    """Base class of MiniC types."""

    def to_ir(self) -> irtypes.Type:
        raise NotImplementedError

    @property
    def is_void(self) -> bool:
        return isinstance(self, CVoid)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, CInt)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, CPointer)

    @property
    def is_array(self) -> bool:
        return isinstance(self, CArray)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, CStruct)

    @property
    def is_scalar(self) -> bool:
        return self.is_integer or self.is_pointer

    def size_in_bytes(self) -> int:
        return self.to_ir().size_in_bytes()


@dataclass(frozen=True)
class CVoid(CType):
    def to_ir(self) -> irtypes.Type:
        return irtypes.VOID

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class CInt(CType):
    """An integer type with a width in bits and a signedness."""

    width: int
    signed: bool = True

    def to_ir(self) -> irtypes.IntType:
        return irtypes.int_type(self.width)

    def __str__(self) -> str:
        names = {8: "char", 16: "short", 32: "int", 64: "long", 1: "_Bool"}
        base = names.get(self.width, f"int{self.width}")
        return base if self.signed else f"unsigned {base}"


@dataclass(frozen=True)
class CPointer(CType):
    pointee: CType

    def to_ir(self) -> irtypes.PointerType:
        pointee = self.pointee.to_ir()
        if pointee.is_void:
            # void* is modelled as i8* in the IR.
            pointee = irtypes.I8
        return irtypes.PointerType(pointee)

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class CArray(CType):
    element: CType
    count: int

    def to_ir(self) -> irtypes.ArrayType:
        return irtypes.ArrayType(self.element.to_ir(), self.count)

    def __str__(self) -> str:
        return f"{self.element}[{self.count}]"


@dataclass(frozen=True)
class CStruct(CType):
    name: str
    field_names: Tuple[str, ...] = ()
    field_types: Tuple[CType, ...] = ()

    def to_ir(self) -> irtypes.StructType:
        return irtypes.StructType(
            self.name,
            tuple(f.to_ir() for f in self.field_types),
            self.field_names,
        )

    def field_type(self, name: str) -> CType:
        try:
            return self.field_types[self.field_names.index(name)]
        except ValueError as exc:
            raise KeyError(f"struct {self.name} has no field '{name}'") from exc

    def field_index(self, name: str) -> int:
        return self.field_names.index(name)

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class CFunction(CType):
    return_type: CType
    param_types: Tuple[CType, ...]
    is_vararg: bool = False

    def to_ir(self) -> irtypes.FunctionType:
        return irtypes.FunctionType(
            self.return_type.to_ir(),
            tuple(decay(p).to_ir() for p in self.param_types),
            self.is_vararg,
        )

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types)
        return f"{self.return_type} ({params})"


# Canonical instances
VOID = CVoid()
BOOL = CInt(1, signed=False)
CHAR = CInt(8, signed=True)
UCHAR = CInt(8, signed=False)
SHORT = CInt(16, signed=True)
USHORT = CInt(16, signed=False)
INT = CInt(32, signed=True)
UINT = CInt(32, signed=False)
LONG = CInt(64, signed=True)
ULONG = CInt(64, signed=False)


def decay(ty: CType) -> CType:
    """Array-to-pointer decay, as in C."""
    if isinstance(ty, CArray):
        return CPointer(ty.element)
    return ty


def integer_promote(ty: CType) -> CType:
    """C-style integer promotion: anything narrower than int becomes int."""
    if isinstance(ty, CInt) and ty.width < 32:
        return INT
    return ty


def usual_arithmetic_conversion(lhs: CType, rhs: CType) -> CType:
    """The common type of a binary arithmetic expression."""
    lhs = integer_promote(lhs)
    rhs = integer_promote(rhs)
    if not isinstance(lhs, CInt) or not isinstance(rhs, CInt):
        raise TypeError(f"cannot combine {lhs} and {rhs}")
    width = max(lhs.width, rhs.width)
    if lhs.width == rhs.width:
        signed = lhs.signed and rhs.signed
    else:
        signed = lhs.signed if lhs.width > rhs.width else rhs.signed
    return CInt(width, signed)
