"""Abstract syntax tree for MiniC.

Expression nodes carry a ``ctype`` attribute that the semantic analyzer
fills in; the lowering pass relies on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .ctype import CType
from .source import SourceLocation, UNKNOWN_LOCATION


# --------------------------------------------------------------------------
# Base nodes
# --------------------------------------------------------------------------
@dataclass
class Node:
    location: SourceLocation = field(default=UNKNOWN_LOCATION, kw_only=True)


@dataclass
class Expr(Node):
    """Base class of expressions; ``ctype`` is set by semantic analysis."""
    ctype: Optional[CType] = field(default=None, kw_only=True)
    #: True when the expression denotes a memory location (an lvalue).
    is_lvalue: bool = field(default=False, kw_only=True)


@dataclass
class Stmt(Node):
    pass


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------
@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class CharLiteral(Expr):
    value: int = 0


@dataclass
class StringLiteral(Expr):
    value: bytes = b""


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class UnaryOp(Expr):
    """Prefix unary operators: ``- ! ~ * & ++ --``."""
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class PostfixOp(Expr):
    """Postfix ``++`` and ``--``."""
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class BinaryOp(Expr):
    """Binary operators, excluding assignment and short-circuit logicals."""
    op: str = ""
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass
class LogicalOp(Expr):
    """Short-circuit ``&&`` and ``||``."""
    op: str = ""
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass
class Assignment(Expr):
    """``lhs op rhs`` where op is ``=`` or a compound assignment."""
    op: str = "="
    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class Conditional(Expr):
    """The ternary ``cond ? then : otherwise``."""
    condition: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    otherwise: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """Array subscript ``base[index]``."""
    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Member(Expr):
    """Struct member access ``base.field`` or ``base->field``."""
    base: Expr = None  # type: ignore[assignment]
    field_name: str = ""
    is_arrow: bool = False


@dataclass
class Cast(Expr):
    """Explicit cast ``(type) expr``."""
    target_type: CType = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class SizeOf(Expr):
    """``sizeof(type)`` or ``sizeof(expr)``."""
    target_type: Optional[CType] = None
    operand: Optional[Expr] = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------
@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class Declaration(Stmt):
    """A local variable declaration, possibly with an initializer."""
    name: str = ""
    var_type: CType = None  # type: ignore[assignment]
    initializer: Optional[Expr] = None


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class DoWhile(Stmt):
    body: Stmt = None  # type: ignore[assignment]
    condition: Expr = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class EmptyStmt(Stmt):
    pass


# --------------------------------------------------------------------------
# Top-level declarations
# --------------------------------------------------------------------------
@dataclass
class Parameter(Node):
    name: str = ""
    param_type: CType = None  # type: ignore[assignment]


@dataclass
class FunctionDef(Node):
    name: str = ""
    return_type: CType = None  # type: ignore[assignment]
    parameters: List[Parameter] = field(default_factory=list)
    body: Optional[Block] = None  # None for declarations (extern)
    is_vararg: bool = False


@dataclass
class GlobalDecl(Node):
    name: str = ""
    var_type: CType = None  # type: ignore[assignment]
    initializer: Optional[Expr] = None
    is_const: bool = False


@dataclass
class StructDef(Node):
    name: str = ""
    field_names: List[str] = field(default_factory=list)
    field_types: List[CType] = field(default_factory=list)


@dataclass
class TranslationUnit(Node):
    """A whole MiniC source file."""
    functions: List[FunctionDef] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
    structs: List[StructDef] = field(default_factory=list)
