"""Source locations and diagnostics for the MiniC front end."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a source file (1-based line and column)."""

    line: int
    column: int
    filename: str = "<source>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


UNKNOWN_LOCATION = SourceLocation(0, 0, "<unknown>")


class CompileError(Exception):
    """A diagnostic raised by the lexer, parser, or semantic analyzer."""

    def __init__(self, message: str, location: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(f"{location}: {message}")
        self.message = message
        self.location = location
