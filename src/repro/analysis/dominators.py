"""Dominator tree and dominance frontiers.

Implements the Cooper/Harvey/Kennedy "A Simple, Fast Dominance Algorithm",
which is what production compilers use for CFGs of this size.  The dominator
tree drives mem2reg (phi placement via dominance frontiers), loop detection,
and several verification-oriented passes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir import BasicBlock, Function
from .cfg import CFG, predecessor_map, reverse_postorder


class DominatorTree:
    """Immediate-dominator tree for the reachable part of a function.

    Pass a prebuilt :class:`~repro.analysis.cfg.CFG` to reuse its traversal
    order and predecessor map instead of recomputing them.
    """

    def __init__(self, function: Function,
                 cfg: Optional[CFG] = None) -> None:
        self.function = function
        if cfg is not None:
            self.rpo = list(cfg.reverse_postorder)
            self._preds = cfg.preds
        else:
            self.rpo = reverse_postorder(function)
            self._preds = predecessor_map(function)
        self._rpo_index: Dict[BasicBlock, int] = {
            block: i for i, block in enumerate(self.rpo)}
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self.children: Dict[BasicBlock, List[BasicBlock]] = {
            block: [] for block in self.rpo}
        self._compute()

    # ----------------------------------------------------------- computation
    def _compute(self) -> None:
        if not self.rpo:
            return
        entry = self.rpo[0]
        preds = self._preds
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {
            block: None for block in self.rpo}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self.rpo[1:]:
                new_idom: Optional[BasicBlock] = None
                for pred in preds.get(block, []):
                    if pred not in self._rpo_index:
                        continue  # unreachable predecessor
                    if idom[pred] is None:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(pred, new_idom, idom)
                if new_idom is not None and idom[block] is not new_idom:
                    idom[block] = new_idom
                    changed = True
        self.idom = {block: (None if block is entry else idom[block])
                     for block in self.rpo}
        for block, dom in self.idom.items():
            if dom is not None:
                self.children[dom].append(block)

    def _intersect(self, a: BasicBlock, b: BasicBlock,
                   idom: Dict[BasicBlock, Optional[BasicBlock]]) -> BasicBlock:
        while a is not b:
            while self._rpo_index[a] > self._rpo_index[b]:
                assert idom[a] is not None
                a = idom[a]  # type: ignore[assignment]
            while self._rpo_index[b] > self._rpo_index[a]:
                assert idom[b] is not None
                b = idom[b]  # type: ignore[assignment]
        return a

    @classmethod
    def remapped(cls, reference: "DominatorTree",
                 block_map: Dict[int, BasicBlock], function: Function,
                 cfg: CFG) -> "DominatorTree":
        """Translate ``reference`` onto the structurally identical
        ``function`` through ``block_map`` (keyed by ``id`` of the reference
        block), reusing ``cfg`` — already remapped — for the traversal order
        and predecessor map.  Skips the iterative dataflow entirely."""
        tree = cls.__new__(cls)
        tree.function = function
        tree.rpo = list(cfg.reverse_postorder)
        tree._preds = cfg.preds
        tree._rpo_index = {block: i for i, block in enumerate(tree.rpo)}
        tree.idom = {
            block_map[id(b)]: (None if d is None else block_map[id(d)])
            for b, d in reference.idom.items()}
        tree.children = {
            block_map[id(b)]: [block_map[id(c)] for c in children]
            for b, children in reference.children.items()}
        return tree

    # ------------------------------------------------------------- queries
    @property
    def entry(self) -> BasicBlock:
        return self.rpo[0]

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self.idom.get(block)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (every block dominates itself)."""
        if a is b:
            return True
        runner: Optional[BasicBlock] = self.idom.get(b)
        while runner is not None:
            if runner is a:
                return True
            runner = self.idom.get(runner)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominated_by(self, block: BasicBlock) -> List[BasicBlock]:
        """All blocks dominated by ``block`` (including itself), preorder."""
        result: List[BasicBlock] = []
        stack = [block]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self.children.get(current, []))
        return result

    def dominance_frontier(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """The dominance frontier of every reachable block."""
        frontier: Dict[BasicBlock, Set[BasicBlock]] = {
            block: set() for block in self.rpo}
        preds = self._preds
        for block in self.rpo:
            block_preds = [p for p in preds.get(block, [])
                           if p in self._rpo_index]
            if len(block_preds) < 2:
                continue
            for pred in block_preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not self.idom[block]:
                    frontier[runner].add(block)
                    runner = self.idom[runner]
        return frontier
