"""Cached, invalidation-aware analysis management.

A many-pass pipeline (the whole point of -OVERIFY is to run *more* passes
than -O3) cannot afford to rebuild ``DominatorTree``/``LoopInfo``/``CallGraph``
from scratch in every pass.  This module provides the same architecture
LLVM's new pass manager uses:

* :class:`AnalysisManager` lazily computes and caches per-function analyses
  (:class:`~repro.analysis.cfg.CFG`, ``DominatorTree``, ``LoopInfo``,
  ``ValueRangeAnalysis``) and per-module analyses (``CallGraph``).
* Every cache entry is stamped with the function's (or module's)
  *modification epoch* — a counter the IR layer bumps on every structural
  mutation — so a stale entry can never be returned even if a pass
  mis-declares what it preserved.
* Passes return a :class:`PreservedAnalyses` summary; the pass manager feeds
  it back into the analysis manager, which drops what was invalidated and
  re-stamps what was explicitly preserved (e.g. constant folding rewrites
  values but leaves the CFG — and therefore the dominator tree and loop
  structure — intact).

Cache hit/miss/invalidation counters are exposed through
:class:`AnalysisManagerStats` and surface in ``TransformStats`` next to the
paper's Table 3 counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..ir import Function, Module
from .callgraph import CallGraph
from .cfg import CFG
from .dominators import DominatorTree
from .loops import LoopInfo
from .memory_ssa import AvailableMemory
from .value_range import ValueRangeAnalysis

# Analysis names.  Function-level analyses are cached per (analysis,
# function); module-level analyses per analysis.
CFG_ANALYSIS = "cfg"
DOMTREE_ANALYSIS = "domtree"
LOOPS_ANALYSIS = "loops"
RANGES_ANALYSIS = "ranges"
MEMORY_ANALYSIS = "memory"
CALLGRAPH_ANALYSIS = "callgraph"

FUNCTION_ANALYSES: Tuple[str, ...] = (
    CFG_ANALYSIS, DOMTREE_ANALYSIS, LOOPS_ANALYSIS, RANGES_ANALYSIS,
    MEMORY_ANALYSIS)
MODULE_ANALYSES: Tuple[str, ...] = (CALLGRAPH_ANALYSIS,)
ALL_ANALYSES: Tuple[str, ...] = FUNCTION_ANALYSES + MODULE_ANALYSES

#: The analyses derived from the CFG shape: a pass that rewrites values but
#: never touches block structure or branch targets preserves these.
CFG_DERIVED: Tuple[str, ...] = (
    CFG_ANALYSIS, DOMTREE_ANALYSIS, LOOPS_ANALYSIS)


class PreservedAnalyses:
    """What one pass run left intact.

    ``changed`` reports whether the IR was modified at all (the pass
    manager's fixpoint driver consumes it); ``preserves(name)`` reports
    whether the named analysis is still valid for the IR the pass ran on.
    An unchanged run preserves everything by definition.
    """

    __slots__ = ("changed", "_preserved", "_all")

    def __init__(self, changed: bool,
                 preserved: Iterable[str] = (),
                 preserve_all: bool = False) -> None:
        self.changed = changed
        self._all = preserve_all or not changed
        self._preserved: FrozenSet[str] = frozenset(preserved)

    # ------------------------------------------------------- constructors
    @classmethod
    def all(cls, changed: bool = False) -> "PreservedAnalyses":
        """Everything is still valid (nothing changed, or only metadata
        changed — the annotation pass)."""
        return cls(changed, preserve_all=True)

    @classmethod
    def none(cls) -> "PreservedAnalyses":
        """The IR changed and no analysis survives (the conservative
        default for CFG-restructuring passes)."""
        return cls(True)

    @classmethod
    def unchanged(cls) -> "PreservedAnalyses":
        return cls(False, preserve_all=True)

    @classmethod
    def preserving(cls, *names: str) -> "PreservedAnalyses":
        """The IR changed but the named analyses are still valid."""
        return cls(True, preserved=names)

    @classmethod
    def cfg_preserving(cls) -> "PreservedAnalyses":
        """The IR changed but only values did: block structure and branch
        targets are untouched, so all CFG-derived analyses survive."""
        return cls(True, preserved=CFG_DERIVED)

    @classmethod
    def from_legacy(cls, result: object) -> "PreservedAnalyses":
        """Coerce an old-style boolean ``changed`` return value (still the
        conservative contract for simple third-party passes)."""
        if isinstance(result, PreservedAnalyses):
            return result
        return cls.none() if result else cls.unchanged()

    # ------------------------------------------------------------ queries
    def preserves(self, name: str) -> bool:
        return self._all or name in self._preserved

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._all:
            detail = "all"
        else:
            detail = ",".join(sorted(self._preserved)) or "none"
        return f"<PreservedAnalyses changed={self.changed} preserves={detail}>"


@dataclass
class AnalysisManagerStats:
    """Cache behaviour counters, totalled and broken down per analysis."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    #: Hits serviced by *translating* another module's cached analysis
    #: (see :class:`AnalysisTransferSource`); always ``<= hits``.
    transfers: int = 0
    hits_by_analysis: Dict[str, int] = field(default_factory=dict)
    misses_by_analysis: Dict[str, int] = field(default_factory=dict)

    def record_hit(self, name: str) -> None:
        self.hits += 1
        self.hits_by_analysis[name] = self.hits_by_analysis.get(name, 0) + 1

    def merge(self, other: "AnalysisManagerStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.invalidations += other.invalidations
        self.transfers += other.transfers
        for name, count in other.hits_by_analysis.items():
            self.hits_by_analysis[name] = \
                self.hits_by_analysis.get(name, 0) + count
        for name, count in other.misses_by_analysis.items():
            self.misses_by_analysis[name] = \
                self.misses_by_analysis.get(name, 0) + count

    def record_miss(self, name: str) -> None:
        self.misses += 1
        self.misses_by_analysis[name] = \
            self.misses_by_analysis.get(name, 0) + 1

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "transfers": self.transfers,
            "hit_rate": round(self.hit_rate, 4),
            "hits_by_analysis": dict(self.hits_by_analysis),
            "misses_by_analysis": dict(self.misses_by_analysis),
        }


class AnalysisTransferSource:
    """Interface for servicing an analysis-cache miss from *outside* the
    manager — e.g. by translating an equivalent analysis computed over a
    structurally identical sibling module (what
    :class:`repro.pipelines.session.CompilerSession` does across the
    per-level pipelines of one workload).

    A transfer must return an analysis that is exactly what the manager
    would have computed itself, or ``None`` to fall back to computing.
    """

    def lookup(self, name: str, function: Function,
               manager: "AnalysisManager") -> Optional[object]:
        raise NotImplementedError  # pragma: no cover


class AnalysisManager:
    """Lazily computes, caches, and invalidates IR analyses.

    Correctness rests on two cooperating mechanisms:

    1. **Epoch stamping** — every cache entry records the function's (or
       module's) modification epoch at computation time; a lookup whose
       epoch no longer matches recomputes.  This is the safety net: a
       mutation that nobody declared still invalidates.
    2. **Preservation declarations** — after a pass runs, the pass manager
       calls :meth:`after_function_pass` / :meth:`after_module_pass` with
       the pass's :class:`PreservedAnalyses`.  Entries the pass did not
       preserve are dropped; entries it explicitly preserved are re-stamped
       to the new epoch (this is what lets a dominator tree survive a
       value-rewriting pass that bumped the epoch without touching the CFG).
    """

    def __init__(self, transfer_source: Optional[AnalysisTransferSource]
                 = None) -> None:
        #: (analysis name, id(function)) -> (epoch, function, analysis)
        self._function_cache: Dict[Tuple[str, int],
                                   Tuple[int, Function, object]] = {}
        #: analysis name -> (epoch, module, analysis)
        self._module_cache: Dict[str, Tuple[int, Module, object]] = {}
        self.stats = AnalysisManagerStats()
        #: Optional cross-module supplier consulted before computing on a
        #: miss (a successful transfer counts as a hit, and additionally in
        #: ``stats.transfers``).
        self.transfer_source = transfer_source

    # ----------------------------------------------------------- accessors
    def cfg(self, function: Function) -> CFG:
        return self._get_function(CFG_ANALYSIS, function)  # type: ignore

    def dominator_tree(self, function: Function) -> DominatorTree:
        return self._get_function(DOMTREE_ANALYSIS, function)  # type: ignore

    def loop_info(self, function: Function) -> LoopInfo:
        return self._get_function(LOOPS_ANALYSIS, function)  # type: ignore

    def value_ranges(self, function: Function) -> ValueRangeAnalysis:
        return self._get_function(RANGES_ANALYSIS, function)  # type: ignore

    def available_memory(self, function: Function) -> AvailableMemory:
        return self._get_function(MEMORY_ANALYSIS, function)  # type: ignore

    def call_graph(self, module: Module) -> CallGraph:
        return self._get_module(CALLGRAPH_ANALYSIS, module)  # type: ignore

    # --------------------------------------------------------------- core
    def _get_function(self, name: str, function: Function) -> object:
        key = (name, id(function))
        epoch = function.ir_epoch
        entry = self._function_cache.get(key)
        if entry is not None and entry[0] == epoch:
            self.stats.record_hit(name)
            return entry[2]
        analysis: Optional[object] = None
        if self.transfer_source is not None:
            analysis = self.transfer_source.lookup(name, function, self)
        if analysis is not None:
            self.stats.record_hit(name)
            self.stats.transfers += 1
        else:
            self.stats.record_miss(name)
            analysis = self._build_function_analysis(name, function)
        # Re-read the epoch: building a derived analysis may itself have
        # populated dependencies, but never mutates the IR.
        self._function_cache[key] = (function.ir_epoch, function, analysis)
        return analysis

    def _build_function_analysis(self, name: str,
                                 function: Function) -> object:
        if name == CFG_ANALYSIS:
            return CFG(function)
        if name == DOMTREE_ANALYSIS:
            return DominatorTree(function, cfg=self.cfg(function))
        if name == LOOPS_ANALYSIS:
            return LoopInfo(function, domtree=self.dominator_tree(function),
                            cfg=self.cfg(function))
        if name == RANGES_ANALYSIS:
            return ValueRangeAnalysis(function, cfg=self.cfg(function))
        if name == MEMORY_ANALYSIS:
            return AvailableMemory(function, cfg=self.cfg(function))
        raise KeyError(f"unknown function analysis '{name}'")

    def _get_module(self, name: str, module: Module) -> object:
        epoch = module.ir_epoch
        entry = self._module_cache.get(name)
        if entry is not None and entry[0] == epoch and entry[1] is module:
            self.stats.record_hit(name)
            return entry[2]
        self.stats.record_miss(name)
        if name == CALLGRAPH_ANALYSIS:
            analysis: object = CallGraph(module)
        else:
            raise KeyError(f"unknown module analysis '{name}'")
        self._module_cache[name] = (module.ir_epoch, module, analysis)
        return analysis

    # --------------------------------------------------------- invalidation
    def after_function_pass(self, function: Function,
                            preserved: PreservedAnalyses,
                            epoch_before: Optional[int] = None) -> None:
        """Apply one function-pass run's preservation summary: drop what the
        pass invalidated, re-stamp what it explicitly kept.

        ``epoch_before`` is the function's epoch before the pass ran; only
        entries computed at exactly that epoch may be re-stamped.  When it
        is unknown (None), nothing is re-stamped — preserved entries are
        merely left in place, and the epoch check decides at lookup time.
        """
        if not preserved.changed:
            return
        fid = id(function)
        epoch = function.ir_epoch
        for name in FUNCTION_ANALYSES:
            key = (name, fid)
            entry = self._function_cache.get(key)
            if entry is None:
                continue
            if preserved.preserves(name):
                if epoch_before is not None and entry[0] == epoch_before:
                    self._function_cache[key] = (epoch, function, entry[2])
            else:
                del self._function_cache[key]
                self.stats.invalidations += 1

    def after_module_pass(self, module: Module,
                          preserved: PreservedAnalyses) -> None:
        """Apply one module-pass run's preservation summary.

        Entries the pass did not preserve are dropped.  Preserved entries
        are deliberately *not* re-stamped here: at module grain the
        per-function declarations (already applied by
        :meth:`after_function_pass`) are the only authority on which stale
        entries are safe to promote — anything left with an old epoch is
        simply recomputed on next lookup."""
        if not preserved.changed:
            return
        for name in list(self._module_cache):
            entry = self._module_cache[name]
            if not (preserved.preserves(name) and entry[1] is module):
                del self._module_cache[name]
                self.stats.invalidations += 1
        for key in list(self._function_cache):
            name, _ = key
            if not preserved.preserves(name):
                del self._function_cache[key]
                self.stats.invalidations += 1

    def invalidate_function(self, function: Function) -> None:
        """Drop every cached analysis for ``function`` (used when a function
        is deleted from the module, so the cache releases its references)."""
        fid = id(function)
        for name in FUNCTION_ANALYSES:
            if self._function_cache.pop((name, fid), None) is not None:
                self.stats.invalidations += 1

    def invalidate_all(self) -> None:
        self.stats.invalidations += \
            len(self._function_cache) + len(self._module_cache)
        self._function_cache.clear()
        self._module_cache.clear()

    # ------------------------------------------------------------- queries
    def cached_entry_count(self) -> int:
        return len(self._function_cache) + len(self._module_cache)

    def is_cached(self, name: str, function: Optional[Function] = None) -> bool:
        """Whether a *currently valid* cache entry exists for ``name``."""
        if function is not None:
            entry = self._function_cache.get((name, id(function)))
            return entry is not None and entry[0] == function.ir_epoch
        entry = self._module_cache.get(name)
        return entry is not None and entry[0] == entry[1].ir_epoch
