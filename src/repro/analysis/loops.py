"""Natural-loop detection and trip-count analysis.

Loops are found from back edges in the dominator tree (an edge ``latch ->
header`` where the header dominates the latch).  The loop unswitching,
unrolling, and LICM passes all operate on this representation, and the
annotation pass exports trip counts as instruction metadata — the paper's
"program annotations" that verification tools can consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir import (
    BasicBlock, BinaryInst, BranchInst, ConstantInt, Function, ICmpInst,
    ICmpPredicate, Instruction, Opcode, PhiInst, Value,
)
from .cfg import CFG, predecessor_map
from .dominators import DominatorTree


@dataclass
class Loop:
    """A natural loop: a header plus the set of blocks that reach the latch
    without going through the header."""

    header: BasicBlock
    blocks: List[BasicBlock] = field(default_factory=list)
    latches: List[BasicBlock] = field(default_factory=list)
    parent: Optional["Loop"] = None
    subloops: List["Loop"] = field(default_factory=list)

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def contains_instruction(self, inst: Instruction) -> bool:
        return inst.parent is not None and self.contains(inst.parent)

    @property
    def depth(self) -> int:
        depth = 1
        parent = self.parent
        while parent is not None:
            depth += 1
            parent = parent.parent
        return depth

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop that are branched to from inside it."""
        exits: List[BasicBlock] = []
        for block in self.blocks:
            for succ in block.successors():
                if not self.contains(succ) and succ not in exits:
                    exits.append(succ)
        return exits

    def exiting_blocks(self) -> List[BasicBlock]:
        """Blocks inside the loop with a successor outside it."""
        result = []
        for block in self.blocks:
            if any(not self.contains(succ) for succ in block.successors()):
                result.append(block)
        return result

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if there is one
        and it branches only to the header."""
        outside = [p for p in self.header.predecessors()
                   if not self.contains(p)]
        if len(outside) != 1:
            return None
        candidate = outside[0]
        if candidate.successors() == [self.header]:
            return candidate
        return None

    def is_invariant(self, value: Value) -> bool:
        """True if ``value`` is defined outside the loop (or is a constant)."""
        if isinstance(value, Instruction):
            return not self.contains_instruction(value)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Loop header={self.header.name} "
                f"blocks={[b.name for b in self.blocks]}>")


class LoopInfo:
    """All natural loops of a function, nested."""

    def __init__(self, function: Function,
                 domtree: Optional[DominatorTree] = None,
                 cfg: Optional[CFG] = None) -> None:
        self.function = function
        self.domtree = domtree or DominatorTree(function, cfg=cfg)
        self._cfg = cfg
        self.loops: List[Loop] = []
        self.top_level: List[Loop] = []
        self._block_to_loop: Dict[int, Loop] = {}
        self._discover()

    # ------------------------------------------------------------ discovery
    def _discover(self) -> None:
        preds = self._cfg.preds if self._cfg is not None \
            else predecessor_map(self.function)
        # Find back edges.
        back_edges: Dict[BasicBlock, List[BasicBlock]] = {}
        for block in self.domtree.rpo:
            for succ in block.successors():
                if succ in self.domtree.idom and self.domtree.dominates(succ, block):
                    back_edges.setdefault(succ, []).append(block)
        # Build one loop per header, merging all its back edges.
        for header, latches in back_edges.items():
            body: Set[int] = {id(header)}
            blocks: List[BasicBlock] = [header]
            stack = list(latches)
            while stack:
                block = stack.pop()
                if id(block) in body:
                    continue
                body.add(id(block))
                blocks.append(block)
                for pred in preds.get(block, []):
                    if id(pred) not in body and pred in self.domtree.idom:
                        stack.append(pred)
            loop = Loop(header=header, blocks=blocks, latches=list(latches))
            self.loops.append(loop)
        # Establish nesting: a loop is a subloop of the smallest loop that
        # strictly contains its header.
        self.loops.sort(key=lambda l: len(l.blocks))
        for i, loop in enumerate(self.loops):
            for bigger in self.loops[i + 1:]:
                if bigger is not loop and bigger.contains(loop.header) and \
                        len(bigger.blocks) > len(loop.blocks):
                    loop.parent = bigger
                    bigger.subloops.append(loop)
                    break
        self.top_level = [l for l in self.loops if l.parent is None]
        for loop in self.loops:
            for block in loop.blocks:
                existing = self._block_to_loop.get(id(block))
                if existing is None or len(loop.blocks) < len(existing.blocks):
                    self._block_to_loop[id(block)] = loop

    @classmethod
    def remapped(cls, reference: "LoopInfo",
                 block_map: Dict[int, BasicBlock], function: Function,
                 domtree: DominatorTree, cfg: CFG) -> "LoopInfo":
        """Translate ``reference`` onto the structurally identical
        ``function`` through ``block_map`` (keyed by ``id`` of the reference
        block), reusing the already-remapped ``domtree``/``cfg``.  Loop
        objects are rebuilt with translated blocks and the same nesting."""
        info = cls.__new__(cls)
        info.function = function
        info.domtree = domtree
        info._cfg = cfg
        loop_map: Dict[int, Loop] = {}
        info.loops = []
        for ref_loop in reference.loops:
            loop = Loop(
                header=block_map[id(ref_loop.header)],
                blocks=[block_map[id(b)] for b in ref_loop.blocks],
                latches=[block_map[id(b)] for b in ref_loop.latches])
            loop_map[id(ref_loop)] = loop
            info.loops.append(loop)
        for ref_loop in reference.loops:
            loop = loop_map[id(ref_loop)]
            if ref_loop.parent is not None:
                loop.parent = loop_map[id(ref_loop.parent)]
            loop.subloops = [loop_map[id(sub)] for sub in ref_loop.subloops]
        info.top_level = [loop for loop in info.loops if loop.parent is None]
        info._block_to_loop = {
            id(block_map[ref_id]): loop_map[id(loop)]
            for ref_id, loop in reference._block_to_loop.items()}
        return info

    # ------------------------------------------------------------- queries
    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing ``block``, if any."""
        return self._block_to_loop.get(id(block))

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self.loop_for(block)
        return loop.depth if loop is not None else 0

    def innermost_loops(self) -> List[Loop]:
        return [loop for loop in self.loops if not loop.subloops]


@dataclass
class TripCount:
    """A statically computed trip count for a counted loop."""

    count: int
    induction_phi: PhiInst
    exit_block: BasicBlock


def compute_trip_count(loop: Loop, max_count: int = 1 << 20) -> Optional[TripCount]:
    """Try to compute an exact trip count for a simple counted loop.

    Handles the common shape produced by the front end: a header phi ``i``
    starting at a constant, stepped by a constant add in the latch, compared
    against a constant bound by the loop's single exiting comparison.
    """
    exiting = loop.exiting_blocks()
    if len(exiting) != 1:
        return None
    exit_block = exiting[0]
    term = exit_block.terminator
    if not isinstance(term, BranchInst) or not term.is_conditional:
        return None
    condition = term.condition
    # Look through the front end's "icmp ne (zext <cmp>), 0" wrapper so the
    # analysis also works on not-yet-instcombined IR.
    if isinstance(condition, ICmpInst) and \
            condition.predicate is ICmpPredicate.NE and \
            isinstance(condition.rhs, ConstantInt) and condition.rhs.is_zero:
        inner = condition.lhs
        from ..ir import CastInst
        if isinstance(inner, CastInst) and isinstance(inner.value, ICmpInst):
            condition = inner.value
    if not isinstance(condition, ICmpInst):
        return None

    # Identify an induction phi in the header.
    for phi in loop.header.phis():
        start: Optional[int] = None
        step: Optional[int] = None
        for value, pred in phi.incoming():
            if loop.contains(pred):
                if isinstance(value, BinaryInst) and value.opcode is Opcode.ADD:
                    other = None
                    if value.lhs is phi and isinstance(value.rhs, ConstantInt):
                        other = value.rhs
                    elif value.rhs is phi and isinstance(value.lhs, ConstantInt):
                        other = value.lhs
                    if other is not None:
                        step = other.signed_value
            else:
                if isinstance(value, ConstantInt):
                    start = value.signed_value
        if start is None or step is None or step == 0:
            continue
        # The exit condition must compare the phi (or its increment) against
        # a constant.
        bound: Optional[int] = None
        compared = None
        if condition.lhs is phi or (isinstance(condition.lhs, BinaryInst) and
                                    phi in condition.lhs.operands):
            compared = condition.lhs
            if isinstance(condition.rhs, ConstantInt):
                bound = condition.rhs.signed_value
        elif condition.rhs is phi or (isinstance(condition.rhs, BinaryInst) and
                                      phi in condition.rhs.operands):
            compared = condition.rhs
            if isinstance(condition.lhs, ConstantInt):
                bound = condition.lhs.signed_value
        if bound is None or compared is None:
            continue
        count = _iterate_trip_count(loop, term, condition, phi, compared,
                                    start, step, bound, max_count)
        if count is not None:
            return TripCount(count=count, induction_phi=phi,
                             exit_block=exit_block)
    return None


def _iterate_trip_count(loop: Loop, term: BranchInst, condition: ICmpInst,
                        phi: PhiInst, compared: Value, start: int, step: int,
                        bound: int, max_count: int) -> Optional[int]:
    """Simulate the counted loop's exit test up to ``max_count`` iterations."""
    from ..ir import eval_icmp
    from ..ir.types import IntType

    ity = phi.type
    if not isinstance(ity, IntType):
        return None
    stays_in_loop_on_true = loop.contains(term.true_target)
    value = start
    for iteration in range(max_count + 1):
        # Value being compared: either the phi itself or phi+step (when the
        # increment is compared instead of the phi).
        if compared is phi:
            lhs_val = value
        else:
            lhs_val = value + step
        if condition.lhs is compared:
            taken = eval_icmp(condition.predicate, ity,
                              lhs_val & ity.mask, bound & ity.mask)
        else:
            taken = eval_icmp(condition.predicate, ity,
                              bound & ity.mask, lhs_val & ity.mask)
        in_loop = taken if stays_in_loop_on_true else not taken
        if not in_loop:
            return iteration
        value += step
    return None
