"""Call graph construction and queries (used by the inliner)."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir import CallInst, Function, Module


class CallGraph:
    """Static call graph of a module (direct calls only)."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.callees: Dict[str, List[str]] = {}
        self.callers: Dict[str, List[str]] = {}
        self.call_sites: Dict[str, List[CallInst]] = {}
        self._build()

    def _build(self) -> None:
        for function in self.module:
            self.callees.setdefault(function.name, [])
            self.callers.setdefault(function.name, [])
            self.call_sites.setdefault(function.name, [])
        for function in self.module.defined_functions():
            for inst in function.instructions():
                if isinstance(inst, CallInst) and isinstance(inst.callee, Function):
                    callee_name = inst.callee.name
                    self.callees[function.name].append(callee_name)
                    self.callers.setdefault(callee_name, []).append(function.name)
                    self.call_sites.setdefault(callee_name, []).append(inst)

    # ------------------------------------------------------------- queries
    def callees_of(self, name: str) -> List[str]:
        return self.callees.get(name, [])

    def callers_of(self, name: str) -> List[str]:
        return self.callers.get(name, [])

    def is_recursive(self, name: str) -> bool:
        """True if ``name`` can reach itself through the call graph."""
        seen: Set[str] = set()
        stack = list(self.callees.get(name, []))
        while stack:
            current = stack.pop()
            if current == name:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.callees.get(current, []))
        return False

    def bottom_up_order(self) -> List[Function]:
        """Defined functions ordered callees-before-callers (SCCs broken
        arbitrarily), which is the order the inliner visits them in."""
        visited: Set[str] = set()
        order: List[Function] = []

        def visit(name: str, path: Set[str]) -> None:
            if name in visited or name in path:
                return
            path.add(name)
            for callee in self.callees.get(name, []):
                visit(callee, path)
            path.discard(name)
            visited.add(name)
            function = self.module.get_function_or_none(name)
            if function is not None and not function.is_declaration:
                order.append(function)

        for function in self.module.defined_functions():
            visit(function.name, set())
        return order

    def reachable_from(self, roots: List[str]) -> Set[str]:
        """Names of functions reachable from any of ``roots``."""
        seen: Set[str] = set()
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.callees.get(current, []))
        return seen
