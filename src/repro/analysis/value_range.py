"""Integer value-range analysis.

A small interval analysis used by two consumers:

* the annotation pass (``repro.passes.annotate``) exports ranges as
  instruction metadata — the "program annotations: types, alias information,
  loop trip counts" row of the paper's Table 2, and
* the symbolic-execution solver uses the same interval arithmetic to prune
  infeasible branches cheaply before invoking the expensive search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..ir import (
    BinaryInst, CastInst, ConstantInt, Function, ICmpInst, ICmpPredicate,
    Instruction, IntType, Opcode, PhiInst, SelectInst, Value,
)
from .cfg import CFG, reverse_postorder


@dataclass(frozen=True)
class Interval:
    """A closed interval [low, high] of *unsigned* values of some width."""

    low: int
    high: int

    @property
    def is_single_value(self) -> bool:
        return self.low == self.high

    def contains(self, value: int) -> bool:
        return self.low <= value <= self.high

    def width(self) -> int:
        return self.high - self.low + 1

    def union(self, other: "Interval") -> "Interval":
        return Interval(min(self.low, other.low), max(self.high, other.high))

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        return Interval(low, high) if low <= high else None

    def __str__(self) -> str:
        return f"[{self.low}, {self.high}]"


def full_range(ty: IntType) -> Interval:
    return Interval(0, ty.max_unsigned)


def _binary_interval(opcode: Opcode, ty: IntType, a: Interval,
                     b: Interval) -> Interval:
    """Interval transfer function; falls back to the full range on overflow
    or for operations where interval arithmetic is imprecise."""
    top = full_range(ty)
    if opcode is Opcode.ADD:
        if a.high + b.high <= ty.max_unsigned:
            return Interval(a.low + b.low, a.high + b.high)
        return top
    if opcode is Opcode.SUB:
        if a.low - b.high >= 0:
            return Interval(a.low - b.high, a.high - b.low)
        return top
    if opcode is Opcode.MUL:
        if a.high * b.high <= ty.max_unsigned:
            return Interval(a.low * b.low, a.high * b.high)
        return top
    if opcode is Opcode.AND:
        return Interval(0, min(a.high, b.high))
    if opcode is Opcode.OR:
        high = a.high | b.high
        # The OR of two values cannot exceed the next power-of-two envelope.
        bits = max(a.high.bit_length(), b.high.bit_length())
        return Interval(max(a.low, b.low), min((1 << bits) - 1, ty.max_unsigned)
                        if bits else 0)
    if opcode is Opcode.XOR:
        bits = max(a.high.bit_length(), b.high.bit_length())
        return Interval(0, min((1 << bits) - 1, ty.max_unsigned) if bits else 0)
    if opcode is Opcode.UDIV:
        if b.low > 0:
            return Interval(a.low // b.high, a.high // b.low)
        return top
    if opcode is Opcode.UREM:
        if b.high > 0:
            return Interval(0, b.high - 1 if b.low > 0 else b.high)
        return top
    if opcode is Opcode.SHL:
        if b.is_single_value and a.high << b.low <= ty.max_unsigned:
            return Interval(a.low << b.low, a.high << b.low)
        return top
    if opcode is Opcode.LSHR:
        if b.is_single_value:
            return Interval(a.low >> b.low, a.high >> b.low)
        return Interval(0, a.high)
    return top


class ValueRangeAnalysis:
    """Forward interval propagation over a function in SSA form."""

    MAX_ITERATIONS = 8

    def __init__(self, function: Function,
                 cfg: Optional[CFG] = None) -> None:
        self.function = function
        self._cfg = cfg
        self.ranges: Dict[int, Interval] = {}
        self._run()

    def _value_range(self, value: Value) -> Optional[Interval]:
        if isinstance(value, ConstantInt):
            return Interval(value.value, value.value)
        if id(value) in self.ranges:
            return self.ranges[id(value)]
        if isinstance(value.type, IntType):
            return full_range(value.type)
        return None

    def _run(self) -> None:
        blocks = self._cfg.reverse_postorder if self._cfg is not None \
            else reverse_postorder(self.function)
        for _ in range(self.MAX_ITERATIONS):
            changed = False
            for block in blocks:
                for inst in block.instructions:
                    new = self._transfer(inst)
                    if new is None:
                        continue
                    old = self.ranges.get(id(inst))
                    if old is not None:
                        new = new.union(old) if isinstance(inst, PhiInst) else new
                    if old != new:
                        self.ranges[id(inst)] = new
                        changed = True
            if not changed:
                break

    def _transfer(self, inst: Instruction) -> Optional[Interval]:
        ty = inst.type
        if not isinstance(ty, IntType):
            return None
        if isinstance(inst, BinaryInst):
            a = self._value_range(inst.lhs)
            b = self._value_range(inst.rhs)
            if a is None or b is None:
                return full_range(ty)
            return _binary_interval(inst.opcode, ty, a, b)
        if isinstance(inst, ICmpInst):
            return Interval(0, 1)
        if isinstance(inst, SelectInst):
            a = self._value_range(inst.true_value)
            b = self._value_range(inst.false_value)
            if a is None or b is None:
                return full_range(ty)
            return a.union(b)
        if isinstance(inst, CastInst):
            source = self._value_range(inst.value)
            if source is None:
                return full_range(ty)
            if inst.opcode is Opcode.ZEXT:
                return source
            if inst.opcode is Opcode.TRUNC:
                if source.high <= ty.max_unsigned:
                    return source
                return full_range(ty)
            if inst.opcode is Opcode.SEXT:
                source_ty = inst.value.type
                if isinstance(source_ty, IntType) and \
                        source.high < source_ty.sign_bit:
                    return source  # non-negative values extend unchanged
                return full_range(ty)
            return full_range(ty)
        if isinstance(inst, PhiInst):
            result: Optional[Interval] = None
            for value, _ in inst.incoming():
                r = self._value_range(value)
                if r is None:
                    return full_range(ty)
                result = r if result is None else result.union(r)
            return result or full_range(ty)
        if inst.opcode is Opcode.LOAD:
            return full_range(ty)
        if inst.opcode is Opcode.CALL:
            return full_range(ty)
        return full_range(ty)

    # ------------------------------------------------------------- queries
    def range_of(self, value: Value) -> Optional[Interval]:
        """The computed interval for ``value`` (None for non-integers)."""
        return self._value_range(value)

    def is_known_nonzero(self, value: Value) -> bool:
        interval = self.range_of(value)
        return interval is not None and interval.low > 0

    def is_known_zero(self, value: Value) -> bool:
        interval = self.range_of(value)
        return interval is not None and interval.low == 0 and interval.high == 0
