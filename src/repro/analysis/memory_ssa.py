"""Available-memory analysis: a lightweight memory SSA.

The paper observes that "memory accesses complicate the data-flow graph of a
program": a load is an opaque value to every later pass, so a branch on a
loaded flag can never fold even when the store that produced the flag is in
plain sight one block earlier.  This module computes, for every basic block,
the set of *available memory facts* at block entry — which (pointer, size)
locations are known to hold which SSA value — so that
:class:`repro.passes.load_elim.LoadElimination` can replace redundant loads
across block boundaries and turn such branch conditions back into ordinary
data flow.

The analysis is a forward must-dataflow over a simple lattice:

* a **fact** says "the ``size`` bytes at ``pointer`` hold ``value``";
  facts are keyed by the identity of the address SSA value, so two
  accesses share a fact exactly when they use the same (typically
  GVN-unified) address computation;
* the **transfer function** adds a fact for every load and store, kills
  facts that a store may alias (using :func:`repro.analysis.alias.alias`),
  and kills everything a call could write — only locations rooted at
  allocas whose address never escapes survive a call;
* the **meet** over predecessors is set intersection: a fact is available
  at block entry only if every predecessor guarantees it.  Because the
  kept facts name the *same* SSA value along every path, the value's
  definition necessarily dominates the block, so replacement is always
  legal.

Unlike the CFG-derived analyses this one depends on the values *inside*
blocks, so it is invalidated by any IR change (it is deliberately not part
of ``CFG_DERIVED``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir import (
    AllocaInst, BasicBlock, CallInst, Function, Instruction, LoadInst,
    PointerType, StoreInst, Value,
)
from .alias import AliasResult, alias, alloca_address_escapes, \
    underlying_object
from .cfg import CFG


@dataclass(frozen=True)
class MemoryFact:
    """``size`` bytes at ``pointer`` are known to hold ``value``."""

    pointer: Value
    size: int
    value: Value


#: A block's fact set, keyed by the identity of the address SSA value.
FactMap = Dict[int, MemoryFact]


def _access_size(pointer: Value, fallback: int = 8) -> int:
    """Byte size of the location a typed pointer addresses."""
    pointer_type = pointer.type
    if isinstance(pointer_type, PointerType) and \
            not pointer_type.pointee.is_void:
        return pointer_type.pointee.size_in_bytes()
    return fallback


def _survives_call(fact: MemoryFact) -> bool:
    """A call can write through any escaped pointer; only facts rooted at
    provably local allocas survive."""
    base = underlying_object(fact.pointer).base
    return isinstance(base, AllocaInst) and not alloca_address_escapes(base)


class AvailableMemory:
    """Per-block available load/store facts for one function.

    ``entry_facts(block)`` returns the facts guaranteed at block entry;
    ``transfer(facts, inst)`` applies one instruction's effect in place and
    is shared with the load-elimination pass so the kill rules cannot drift
    apart from the analysis.
    """

    def __init__(self, function: Function, cfg: Optional[CFG] = None) -> None:
        self.function = function
        self.cfg = cfg if cfg is not None else CFG(function)
        #: block -> facts available at block entry.
        self._entry: Dict[BasicBlock, FactMap] = {}
        if function.blocks:
            self._solve()

    # ------------------------------------------------------------- queries
    def entry_facts(self, block: BasicBlock) -> FactMap:
        """Facts guaranteed to hold when ``block`` is entered (a copy)."""
        return dict(self._entry.get(block, {}))

    def available_value(self, block: BasicBlock, pointer: Value,
                        size: int) -> Optional[Value]:
        """The value known to be at ``pointer`` on entry to ``block``."""
        fact = self._entry.get(block, {}).get(id(pointer))
        if fact is not None and fact.size == size:
            return fact.value
        return None

    # ------------------------------------------------------ transfer rules
    @staticmethod
    def transfer(facts: FactMap, inst: Instruction) -> None:
        """Apply one instruction's memory effect to ``facts`` in place."""
        if isinstance(inst, LoadInst):
            key = id(inst.pointer)
            if key not in facts:
                facts[key] = MemoryFact(inst.pointer,
                                        _access_size(inst.pointer), inst)
        elif isinstance(inst, StoreInst):
            value_type = inst.value.type
            size = 8 if value_type.is_void else value_type.size_in_bytes()
            for key, fact in list(facts.items()):
                if alias(inst.pointer, size, fact.pointer, fact.size) \
                        is not AliasResult.NO_ALIAS:
                    del facts[key]
            facts[id(inst.pointer)] = MemoryFact(inst.pointer, size,
                                                 inst.value)
        elif isinstance(inst, CallInst):
            for key, fact in list(facts.items()):
                if not _survives_call(fact):
                    del facts[key]

    def block_exit(self, block: BasicBlock,
                   entry: Optional[FactMap] = None) -> FactMap:
        """Facts at the end of ``block`` given its entry facts."""
        facts = dict(self._entry.get(block, {})) if entry is None \
            else dict(entry)
        for inst in block.instructions:
            self.transfer(facts, inst)
        return facts

    # ------------------------------------------------------------ fixpoint
    @staticmethod
    def _meet(maps: List[FactMap]) -> FactMap:
        """Intersection of predecessor exit facts: identical (pointer,
        size, value) triples only."""
        if not maps:
            return {}
        result = dict(maps[0])
        for other in maps[1:]:
            for key in list(result):
                fact = other.get(key)
                if fact is None or fact != result[key]:
                    del result[key]
            if not result:
                break
        return result

    def _solve(self) -> None:
        order = self.cfg.reverse_postorder
        entry_block = self.function.entry_block
        #: block -> exit facts; None means "not yet visited" (top), which
        #: the meet skips so loop back edges do not zero the header's facts
        #: on the first sweep.
        exits: Dict[BasicBlock, Optional[FactMap]] = \
            {block: None for block in order}
        changed = True
        while changed:
            changed = False
            for block in order:
                if block is entry_block:
                    entry: FactMap = {}
                else:
                    pred_exits = [exits[pred]
                                  for pred in self.cfg.preds.get(block, [])
                                  if pred in exits]
                    known = [facts for facts in pred_exits if facts is not None]
                    if pred_exits and not known:
                        continue  # no predecessor processed yet
                    entry = self._meet(known)
                self._entry[block] = entry
                exit_facts = self.block_exit(block, entry)
                if exits.get(block) != exit_facts:
                    exits[block] = exit_facts
                    changed = True
