"""Control-flow-graph utilities over IR functions."""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..ir import BasicBlock, BranchInst, Function, PhiInst, SwitchInst


def successors(block: BasicBlock) -> List[BasicBlock]:
    """CFG successors of ``block`` (empty for returns/unreachable)."""
    return block.successors()


def predecessors(block: BasicBlock) -> List[BasicBlock]:
    """CFG predecessors of ``block``."""
    return block.predecessors()


def reachable_blocks(function: Function) -> List[BasicBlock]:
    """Blocks reachable from the entry, in depth-first preorder."""
    if not function.blocks:
        return []
    seen: Set[int] = set()
    order: List[BasicBlock] = []
    stack = [function.entry_block]
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen.add(id(block))
        order.append(block)
        for succ in reversed(block.successors()):
            if id(succ) not in seen:
                stack.append(succ)
    return order


def unreachable_blocks(function: Function) -> List[BasicBlock]:
    """Blocks that cannot be reached from the entry block."""
    reachable = {id(b) for b in reachable_blocks(function)}
    return [b for b in function.blocks if id(b) not in reachable]


def postorder(function: Function) -> List[BasicBlock]:
    """Reachable blocks in depth-first postorder."""
    seen: Set[int] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        seen.add(id(block))
        for succ in block.successors():
            if id(succ) not in seen:
                visit(succ)
        order.append(block)

    if function.blocks:
        visit(function.entry_block)
    return order


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Reachable blocks in reverse postorder (a topological-ish order)."""
    return list(reversed(postorder(function)))


class CFG:
    """A cached control-flow-graph view of one function.

    Bundles the traversal orders and the predecessor map that almost every
    other analysis starts from, so the analysis manager can compute them once
    per function epoch and share them (the dominator tree, loop info, and
    value-range analysis all accept a prebuilt CFG).
    """

    def __init__(self, function: Function) -> None:
        self.function = function
        self.postorder: List[BasicBlock] = postorder(function)
        self.reverse_postorder: List[BasicBlock] = list(
            reversed(self.postorder))
        self.preds: Dict[BasicBlock, List[BasicBlock]] = \
            predecessor_map(function)
        self._reachable_ids: Set[int] = {id(b) for b in self.postorder}

    def predecessors(self, block: BasicBlock) -> List[BasicBlock]:
        return self.preds.get(block, [])

    def is_reachable(self, block: BasicBlock) -> bool:
        return id(block) in self._reachable_ids

    def reachable_ids(self) -> Set[int]:
        return set(self._reachable_ids)

    @classmethod
    def remapped(cls, reference: "CFG", block_map: Dict[int, BasicBlock],
                 function: Function) -> "CFG":
        """Translate ``reference`` (computed over a structurally identical
        sibling function) onto ``function`` through ``block_map`` (keyed by
        ``id`` of the reference block).  This rebuilds only dictionaries —
        no graph traversal — which is what makes cross-module analysis
        transfer in :class:`~repro.pipelines.session.CompilerSession` cheap.
        """
        cfg = cls.__new__(cls)
        cfg.function = function
        cfg.postorder = [block_map[id(b)] for b in reference.postorder]
        cfg.reverse_postorder = list(reversed(cfg.postorder))
        cfg.preds = {block_map[id(b)]: [block_map[id(p)] for p in ps]
                     for b, ps in reference.preds.items()}
        cfg._reachable_ids = {id(b) for b in cfg.postorder}
        return cfg

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CFG {self.function.name} "
                f"({len(self.postorder)} reachable blocks)>")


def predecessor_map(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Map every reachable block to its list of predecessors."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {
        block: [] for block in function.blocks}
    for block in function.blocks:
        for succ in block.successors():
            if succ in preds:
                preds[succ].append(block)
    return preds


def remove_unreachable_blocks(function: Function) -> int:
    """Delete blocks not reachable from the entry.  Returns how many."""
    dead = unreachable_blocks(function)
    for block in dead:
        # Phi nodes in live successors must forget about the dead predecessor.
        for succ in block.successors():
            if succ not in dead:
                succ.remove_predecessor(block)
    for block in dead:
        for inst in list(block.instructions):
            inst.drop_all_references()
            inst.parent = None
        block.instructions = []
        function.remove_block(block)
    return len(dead)


def split_edge(pred: BasicBlock, succ: BasicBlock) -> BasicBlock:
    """Insert a new empty block on the edge ``pred -> succ`` and return it."""
    function = pred.parent
    assert function is not None
    from ..ir import IRBuilder

    middle = BasicBlock(function.next_name("edge"))
    function.insert_block_after(pred, middle)
    builder = IRBuilder(middle)
    builder.set_insert_point(middle)
    builder.br(succ)

    term = pred.terminator
    assert term is not None
    for index, op in enumerate(term.operands):
        if op is succ:
            term.set_operand(index, middle)
    for phi in succ.phis():
        for i, incoming in enumerate(phi.incoming_blocks):
            if incoming is pred:
                phi.incoming_blocks[i] = middle
    return middle
