"""repro.analysis — analyses over the IR (CFG, dominators, loops, aliasing,
call graph, value ranges, static metrics)."""

from .cfg import (
    CFG, postorder, predecessor_map, predecessors, reachable_blocks,
    remove_unreachable_blocks, reverse_postorder, split_edge, successors,
    unreachable_blocks,
)
from .dominators import DominatorTree
from .loops import Loop, LoopInfo, TripCount, compute_trip_count
from .callgraph import CallGraph
from .alias import (
    AliasResult, PointerInfo, alias, alloca_address_escapes, underlying_object,
)
from .metrics import (
    FunctionMetrics, ModuleMetrics, function_metrics, module_metrics,
    verification_cost_estimate,
)
from .value_range import Interval, ValueRangeAnalysis, full_range
from .memory_ssa import AvailableMemory, FactMap, MemoryFact
from .manager import (
    ALL_ANALYSES, CALLGRAPH_ANALYSIS, CFG_ANALYSIS, CFG_DERIVED,
    DOMTREE_ANALYSIS, FUNCTION_ANALYSES, LOOPS_ANALYSIS, MEMORY_ANALYSIS,
    MODULE_ANALYSES, RANGES_ANALYSIS, AnalysisManager, AnalysisManagerStats,
    AnalysisTransferSource, PreservedAnalyses,
)

__all__ = [
    "CFG",
    "postorder", "predecessor_map", "predecessors", "reachable_blocks",
    "remove_unreachable_blocks", "reverse_postorder", "split_edge",
    "successors", "unreachable_blocks",
    "DominatorTree",
    "Loop", "LoopInfo", "TripCount", "compute_trip_count",
    "CallGraph",
    "AliasResult", "PointerInfo", "alias", "alloca_address_escapes",
    "underlying_object",
    "FunctionMetrics", "ModuleMetrics", "function_metrics", "module_metrics",
    "verification_cost_estimate",
    "Interval", "ValueRangeAnalysis", "full_range",
    "AvailableMemory", "FactMap", "MemoryFact",
    "AnalysisManager", "AnalysisManagerStats", "AnalysisTransferSource",
    "PreservedAnalyses",
    "ALL_ANALYSES", "FUNCTION_ANALYSES", "MODULE_ANALYSES", "CFG_DERIVED",
    "CFG_ANALYSIS", "DOMTREE_ANALYSIS", "LOOPS_ANALYSIS", "RANGES_ANALYSIS",
    "MEMORY_ANALYSIS", "CALLGRAPH_ANALYSIS",
]
