"""Static program metrics.

These are the quantities the paper reports or reasons about: instruction
counts (Table 1), branch counts, loop counts, call counts, and a rough
"verification complexity" estimate that the -OVERIFY cost models use when
deciding how aggressively to transform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..ir import (
    BranchInst, CallInst, Function, Instruction, LoadInst, Module, Opcode,
    PhiInst, SelectInst, StoreInst, SwitchInst,
)
from .loops import LoopInfo


@dataclass
class FunctionMetrics:
    """Static metrics of a single function."""

    name: str = ""
    instructions: int = 0
    blocks: int = 0
    conditional_branches: int = 0
    unconditional_branches: int = 0
    switches: int = 0
    selects: int = 0
    loads: int = 0
    stores: int = 0
    allocas: int = 0
    calls: int = 0
    phis: int = 0
    loops: int = 0
    max_loop_depth: int = 0

    @property
    def memory_accesses(self) -> int:
        return self.loads + self.stores

    @property
    def branch_like(self) -> int:
        """Control-flow decision points (what path explosion grows with)."""
        return self.conditional_branches + self.switches


@dataclass
class ModuleMetrics:
    """Aggregated metrics of a module plus the per-function breakdown."""

    instructions: int = 0
    blocks: int = 0
    functions: int = 0
    conditional_branches: int = 0
    selects: int = 0
    loops: int = 0
    memory_accesses: int = 0
    calls: int = 0
    per_function: Dict[str, FunctionMetrics] = field(default_factory=dict)


def function_metrics(function: Function) -> FunctionMetrics:
    """Compute static metrics for one function."""
    metrics = FunctionMetrics(name=function.name)
    metrics.blocks = len(function.blocks)
    for inst in function.instructions():
        metrics.instructions += 1
        if isinstance(inst, BranchInst):
            if inst.is_conditional:
                metrics.conditional_branches += 1
            else:
                metrics.unconditional_branches += 1
        elif isinstance(inst, SwitchInst):
            metrics.switches += 1
        elif isinstance(inst, SelectInst):
            metrics.selects += 1
        elif isinstance(inst, LoadInst):
            metrics.loads += 1
        elif isinstance(inst, StoreInst):
            metrics.stores += 1
        elif isinstance(inst, CallInst):
            metrics.calls += 1
        elif isinstance(inst, PhiInst):
            metrics.phis += 1
        elif inst.opcode is Opcode.ALLOCA:
            metrics.allocas += 1
    if function.blocks:
        loop_info = LoopInfo(function)
        metrics.loops = len(loop_info.loops)
        metrics.max_loop_depth = max(
            (loop.depth for loop in loop_info.loops), default=0)
    return metrics


def module_metrics(module: Module) -> ModuleMetrics:
    """Compute metrics for every defined function in ``module``."""
    result = ModuleMetrics()
    for function in module.defined_functions():
        fm = function_metrics(function)
        result.per_function[function.name] = fm
        result.functions += 1
        result.instructions += fm.instructions
        result.blocks += fm.blocks
        result.conditional_branches += fm.conditional_branches
        result.selects += fm.selects
        result.loops += fm.loops
        result.memory_accesses += fm.memory_accesses
        result.calls += fm.calls
    return result


def verification_cost_estimate(function: Function) -> float:
    """A rough estimate of how expensive a function is for a path-exploring
    verification tool: branches dominate, then loops, then memory accesses.

    This mirrors the paper's observation that "the time to verify a program
    is dominated by the number of branches it has, the overall number of loop
    iterations, memory accesses, and various arithmetic artifacts."
    """
    metrics = function_metrics(function)
    return (8.0 * metrics.branch_like +
            16.0 * metrics.loops +
            1.5 * metrics.memory_accesses +
            2.0 * metrics.calls +
            0.1 * metrics.instructions)
