"""A simple may-alias analysis over the IR's flat memory model.

The paper notes that "memory accesses complicate the data-flow graph of a
program" and that splitting objects reduces aliasing opportunities.  This
module provides the alias queries used by SROA, GVN (load elimination), and
the annotation pass that exports alias sets as metadata.

The analysis tracks the *underlying object* of every pointer: an alloca, a
global, an argument, or unknown.  Two pointers with distinct underlying
objects of the first two kinds cannot alias; pointers derived from the same
alloca with different constant byte offsets and non-overlapping extents
cannot alias either.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..ir import (
    AllocaInst, Argument, CastInst, ConstantInt, GEPInst, GlobalVariable,
    Instruction, Opcode, Value,
)


class AliasResult(enum.Enum):
    NO_ALIAS = "no"
    MAY_ALIAS = "may"
    MUST_ALIAS = "must"


@dataclass(frozen=True)
class PointerInfo:
    """Decomposition of a pointer into (base object, constant byte offset)."""

    base: Value
    offset: Optional[int]  # None when the offset is not a compile-time constant

    @property
    def has_constant_offset(self) -> bool:
        return self.offset is not None


def underlying_object(pointer: Value) -> PointerInfo:
    """Strip GEPs and pointer casts to find the allocation a pointer is
    derived from, accumulating constant offsets along the way."""
    offset: Optional[int] = 0
    current = pointer
    while True:
        if isinstance(current, GEPInst):
            step = 0
            constant = True
            for index in current.indices:
                if isinstance(index, ConstantInt):
                    step += index.signed_value
                else:
                    constant = False
                    break
            if constant and offset is not None:
                offset += step
            else:
                offset = None
            current = current.base
        elif isinstance(current, CastInst) and current.opcode in (
                Opcode.BITCAST, Opcode.INTTOPTR, Opcode.PTRTOINT):
            if current.opcode is Opcode.BITCAST:
                current = current.value
            else:
                # Integer round trips lose provenance; give up on the offset.
                return PointerInfo(current, None)
        else:
            return PointerInfo(current, offset)


def _is_identified_object(value: Value) -> bool:
    """Allocas and globals are distinct objects with known identity."""
    return isinstance(value, (AllocaInst, GlobalVariable))


def alias(ptr_a: Value, size_a: int, ptr_b: Value, size_b: int) -> AliasResult:
    """May the byte ranges ``[ptr_a, ptr_a+size_a)`` and ``[ptr_b,
    ptr_b+size_b)`` overlap?"""
    info_a = underlying_object(ptr_a)
    info_b = underlying_object(ptr_b)

    if info_a.base is info_b.base:
        if info_a.offset is None or info_b.offset is None:
            return AliasResult.MAY_ALIAS
        if info_a.offset == info_b.offset and size_a == size_b:
            return AliasResult.MUST_ALIAS
        if info_a.offset + size_a <= info_b.offset or \
                info_b.offset + size_b <= info_a.offset:
            return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS

    # Distinct identified objects never overlap.
    if _is_identified_object(info_a.base) and _is_identified_object(info_b.base):
        return AliasResult.NO_ALIAS
    # An alloca whose address never escapes cannot alias an argument pointer.
    for local, other in ((info_a, info_b), (info_b, info_a)):
        if isinstance(local.base, AllocaInst) and \
                isinstance(other.base, Argument) and \
                not alloca_address_escapes(local.base):
            return AliasResult.NO_ALIAS
    return AliasResult.MAY_ALIAS


def alloca_address_escapes(alloca: AllocaInst) -> bool:
    """True if the address of ``alloca`` may escape the current function
    (stored somewhere, passed to a call, or converted to an integer)."""
    from ..ir import CallInst, LoadInst, StoreInst

    worklist = [alloca]
    seen = set()
    while worklist:
        value = worklist.pop()
        if id(value) in seen:
            continue
        seen.add(id(value))
        for use in value.uses:
            user = use.user
            if isinstance(user, LoadInst):
                continue
            if isinstance(user, StoreInst):
                if user.value is value:
                    return True  # the address itself is stored
                continue
            if isinstance(user, GEPInst) and user.base is value:
                worklist.append(user)
                continue
            if isinstance(user, CastInst) and user.opcode is Opcode.BITCAST:
                worklist.append(user)
                continue
            if isinstance(user, CallInst):
                return True
            if isinstance(user, Instruction) and user.opcode is Opcode.PTRTOINT:
                return True
            # Phi/select/compare of addresses: be conservative.
            if isinstance(user, Instruction) and user.opcode in (
                    Opcode.PHI, Opcode.SELECT):
                worklist.append(user)
                continue
            if isinstance(user, Instruction) and user.opcode is Opcode.ICMP:
                continue
            return True
    return False
