"""Structured failure taxonomy and a deterministic fault-injection harness.

The stack treats partial failure as a first-class outcome (see
``docs/robustness.md``): a solver exception on one path becomes a
diagnosed ``engine-error`` path, a crashed worker's state is retried
once, a torn store write leaves the previous store intact, a malformed
service request gets a structured ``protocol`` error response.  Two
things make that contract testable:

* **The taxonomy.**  Every failure the stack raises deliberately is a
  :class:`ReproError` subclass carrying a stable ``kind`` string (wired
  into service responses as ``error_kind``), a ``retryable`` hint, and
  the fault ``site`` that produced it.

* **The injector.**  Named fault sites — ``solver.check``,
  ``engine.step``, ``worker.run``, ``store.write``, ``store.load``,
  ``server.handle`` — are threaded through the hot paths as

      if _SITE.armed:
          _SITE.fire()

  ``armed`` is a plain attribute that is ``False`` unless a plan names
  the site, so an unarmed site costs one attribute read.  Plans are
  installed programmatically (:func:`injected` in tests) or from the
  ``REPRO_FAULTS`` environment variable at import time::

      REPRO_FAULTS="store.write:every=3;solver.check:prob=0.01;seed=7"

  Plan grammar — ``;``-separated clauses, each ``site[:directives]``
  with ``,``-separated directives:

  * ``every=N``   — fire on every Nth hit of the site (default ``every=1``).
  * ``prob=P``    — fire each hit with probability ``P`` (deterministic:
    the draw hashes ``seed:site:hit``, so a plan replays identically
    regardless of thread scheduling).
  * ``times=N`` / ``once`` — stop after N firings (``once`` = ``times=1``).
  * ``seed=N``    — a bare clause seeding every ``prob`` draw.
"""

from __future__ import annotations

import os
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Type


# --------------------------------------------------------------- taxonomy
class ReproError(Exception):
    """Base of every deliberate failure in the stack.

    ``kind`` is the stable wire identifier (service responses carry it as
    ``error_kind``); ``retryable`` hints whether an identical retry can
    succeed; ``site`` names the fault site that produced the error, when
    one did.
    """

    kind = "repro"
    retryable = False

    def __init__(self, message: str, site: Optional[str] = None) -> None:
        super().__init__(message)
        self.site = site


class SolverError(ReproError):
    """A constraint-solver query failed (contained per path)."""
    kind = "solver"
    retryable = False


class EngineError(ReproError):
    """The symbolic-execution engine failed on one path (contained)."""
    kind = "engine"
    retryable = False


class StoreError(ReproError):
    """A knowledge-store read or write failed (persistence is
    best-effort; the run degrades to memory-only)."""
    kind = "store"
    retryable = True


class WorkerCrash(ReproError):
    """A pool worker died before stepping its state (retried once)."""
    kind = "worker-crash"
    retryable = True


class DeadlineExceeded(ReproError):
    """A query or job overran its wall-clock deadline."""
    kind = "deadline"
    retryable = True


class ProtocolError(ReproError):
    """A malformed service request (the client's fault, not ours)."""
    kind = "protocol"
    retryable = False


class FaultPlanError(ValueError):
    """A ``REPRO_FAULTS`` plan that does not parse."""


# --------------------------------------------------------------- injector
@dataclass(frozen=True)
class _Rule:
    """One site's firing discipline (parsed from a plan clause)."""
    every: int = 1      #: fire every Nth hit (0 = use ``prob`` instead)
    prob: float = 0.0   #: per-hit firing probability (when ``every`` = 0)
    times: int = -1     #: stop after this many firings (-1 = unlimited)
    seed: int = 0       #: seeds the deterministic ``prob`` draws


def _draw(seed: int, name: str, hit: int) -> float:
    """Deterministic uniform draw in [0, 1) for hit number ``hit`` of
    site ``name``.  A pure function of its arguments — unlike a shared
    ``random.Random``, the sequence cannot depend on which thread
    happens to hit a site first."""
    token = f"{seed}:{name}:{hit}".encode("utf-8")
    return (zlib.crc32(token) % 999_983) / 999_983.0


class FaultSite:
    """One named injection point.

    ``armed`` is the fast-path gate: callers write
    ``if SITE.armed: SITE.fire()`` so an unarmed site costs a single
    attribute read on the hot path.  ``fire()`` raises the site's error
    class when the installed rule says this hit should fail.
    """

    __slots__ = ("name", "error", "armed", "hits", "fired", "_rule",
                 "_lock")

    def __init__(self, name: str, error: Type[ReproError]) -> None:
        self.name = name
        self.error = error
        self.armed = False
        self.hits = 0       #: fire() calls since the plan was installed
        self.fired = 0      #: faults actually raised
        self._rule: Optional[_Rule] = None
        self._lock = threading.Lock()

    def fire(self) -> None:
        """Raise this site's error if the installed rule triggers."""
        rule = self._rule
        if rule is None:
            return
        with self._lock:
            self.hits += 1
            hit = self.hits
            if rule.times >= 0 and self.fired >= rule.times:
                return
            if rule.every:
                trigger = hit % rule.every == 0
            else:
                trigger = _draw(rule.seed, self.name, hit) < rule.prob
            if not trigger:
                return
            self.fired += 1
        raise self.error(f"injected fault at {self.name} (hit {hit})",
                         site=self.name)

    def _apply(self, rule: Optional[_Rule]) -> None:
        with self._lock:
            self._rule = rule
            self.hits = 0
            self.fired = 0
            self.armed = rule is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "armed" if self.armed else "disarmed"
        return f"<FaultSite {self.name} {state} fired={self.fired}>"


def _parse_plan(text: str) -> Dict[str, _Rule]:
    """Parse a ``REPRO_FAULTS`` plan into site-name -> rule."""
    clauses = [clause.strip() for clause in text.split(";")
               if clause.strip()]
    seed = 0
    site_clauses: List[str] = []
    for clause in clauses:
        if clause.startswith("seed="):
            try:
                seed = int(clause[len("seed="):])
            except ValueError:
                raise FaultPlanError(f"bad seed clause {clause!r}") from None
        else:
            site_clauses.append(clause)

    rules: Dict[str, _Rule] = {}
    for clause in site_clauses:
        name, _, tail = clause.partition(":")
        name = name.strip()
        if not name or any(ch.isspace() for ch in name):
            raise FaultPlanError(f"bad site name in clause {clause!r}")
        every = 0
        prob = 0.0
        times = -1
        for directive in (d.strip() for d in tail.split(",") if d.strip()):
            if directive == "once":
                times = 1
            elif directive.startswith("every="):
                try:
                    every = int(directive[len("every="):])
                except ValueError:
                    raise FaultPlanError(
                        f"bad directive {directive!r}") from None
                if every < 1:
                    raise FaultPlanError(f"every= must be >= 1 in {clause!r}")
            elif directive.startswith("prob="):
                try:
                    prob = float(directive[len("prob="):])
                except ValueError:
                    raise FaultPlanError(
                        f"bad directive {directive!r}") from None
                if not 0.0 < prob <= 1.0:
                    raise FaultPlanError(
                        f"prob= must be in (0, 1] in {clause!r}")
            elif directive.startswith("times="):
                try:
                    times = int(directive[len("times="):])
                except ValueError:
                    raise FaultPlanError(
                        f"bad directive {directive!r}") from None
                if times < 0:
                    raise FaultPlanError(f"times= must be >= 0 in {clause!r}")
            else:
                raise FaultPlanError(f"unknown directive {directive!r} "
                                     f"in clause {clause!r}")
        if every and prob:
            raise FaultPlanError(
                f"give every= or prob=, not both, in {clause!r}")
        if not every and not prob:
            every = 1
        rules[name] = _Rule(every=every, prob=prob, times=times, seed=seed)
    return rules


class FaultInjector:
    """The process-wide fault-site registry + plan installer.

    Sites register lazily (at module import of their host), plans can be
    installed at any time: a plan naming a site that is not registered
    yet is kept pending and arms the site the moment it registers.
    """

    def __init__(self) -> None:
        self._sites: Dict[str, FaultSite] = {}
        self._rules: Dict[str, _Rule] = {}
        self._lock = threading.Lock()
        self.plan_text = ""

    def site(self, name: str,
             error: Type[ReproError] = EngineError) -> FaultSite:
        """Register (or fetch) the site called ``name``."""
        with self._lock:
            existing = self._sites.get(name)
            if existing is not None:
                return existing
            site = FaultSite(name, error)
            site._apply(self._rules.get(name))
            self._sites[name] = site
            return site

    def install(self, plan: str) -> None:
        """Replace the active plan (and reset every site's counters).
        The empty string disarms everything."""
        rules = _parse_plan(plan)
        with self._lock:
            self.plan_text = plan
            self._rules = rules
            for name, site in self._sites.items():
                site._apply(rules.get(name))

    def clear(self) -> None:
        self.install("")

    def registered(self) -> List[str]:
        """Every site name the process has registered, sorted."""
        with self._lock:
            return sorted(self._sites)

    def armed(self) -> List[str]:
        """The registered sites the active plan arms, sorted."""
        with self._lock:
            return sorted(name for name, site in self._sites.items()
                          if site.armed)

    def fired(self) -> Dict[str, int]:
        """site name -> faults raised since the plan was installed."""
        with self._lock:
            return {name: site.fired for name, site in self._sites.items()
                    if site.fired}


#: The process-wide injector every fault site registers with.
INJECTOR = FaultInjector()


def site(name: str, error: Type[ReproError] = EngineError) -> FaultSite:
    """Module-level convenience: ``faults.site("solver.check")``."""
    return INJECTOR.site(name, error)


class injected:
    """Context manager installing ``plan`` for the duration of a test::

        with faults.injected("store.write:once"):
            ...

    Restores the previously active plan (usually none) on exit.
    """

    def __init__(self, plan: str) -> None:
        self.plan = plan
        self._previous = ""

    def __enter__(self) -> FaultInjector:
        self._previous = INJECTOR.plan_text
        INJECTOR.install(self.plan)
        return INJECTOR

    def __exit__(self, *exc_info: object) -> None:
        INJECTOR.install(self._previous)


_env_plan = os.environ.get("REPRO_FAULTS", "")
if _env_plan:
    INJECTOR.install(_env_plan)


__all__ = [
    "ReproError", "SolverError", "EngineError", "StoreError", "WorkerCrash",
    "DeadlineExceeded", "ProtocolError", "FaultPlanError",
    "FaultSite", "FaultInjector", "INJECTOR", "site", "injected",
]
