"""The ``python -m repro`` command-line driver.

Compile a registered workload (or a MiniC source file) at a named
optimization level or through a raw ``--passes`` pipeline string, print the
pipeline and compile statistics, and optionally hand the result to a
verification backend and/or run it concretely:

    python -m repro wc                               # -OVERIFY build
    python -m repro wc --level O3 --run
    python -m repro wc --passes "simplifycfg,mem2reg,inline<threshold=5000,loops>,gvn"
    python -m repro grep --verify --backend "symex<searcher=bfs>"
    python -m repro wc --verify --store /tmp/knowledge.jsonl
    python -m repro --list-passes

The ``serve`` subcommand runs the verification service front door
(see ``docs/service.md``):

    python -m repro serve /tmp/verify.sock --store /tmp/knowledge.jsonl

The ``fuzz`` subcommand runs the differential fuzzer
(see ``docs/fuzzing.md``):

    python -m repro fuzz --seeds 200 --jobs 4
    python -m repro fuzz --seed 17 --minimize

The ``relcheck`` subcommand proves two optimization levels of a workload
equivalent path-by-path (see ``docs/relcheck.md``):

    python -m repro relcheck wc --levels O0,OVERIFY --workers 4
    python -m repro relcheck --all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .frontend import CompileError, analyze, lower, parse as parse_minic
from .ir import verify_module
from .passes import (
    AnalysisManager, PipelineSpec, PipelineSyntaxError, format_pass,
    format_pipeline, parse_pipeline, registered_passes,
)
from .pipelines import (
    CompileOptions, CompilerSession, LEVEL_PIPELINES, OptLevel,
    build_pipeline_from_spec, level_spec, level_spec_string, link_sources,
    parse_opt_level, with_entry_points, with_runtime_checks,
)
from .verification import (
    BackendSpecError, VerificationRequest, backend_names, make_backend,
)
from .workloads import all_workloads, get_workload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Compile (and optionally verify) a workload with the "
                    "-OVERIFY reproduction compiler.")
    parser.add_argument("workload", nargs="?",
                        help="registered workload name (see --list-workloads)")
    parser.add_argument("--source", metavar="FILE",
                        help="compile a MiniC source file instead of a "
                             "registered workload")
    parser.add_argument("--level", default="-OVERIFY",
                        help="optimization level: O0/O1/O2/O3/OVERIFY "
                             "(write --level=-O2 for the dashed spelling; "
                             "default -OVERIFY)")
    parser.add_argument("--passes", metavar="PIPELINE",
                        help="raw pipeline string overriding --level, e.g. "
                             "'simplifycfg,mem2reg,gvn'")
    parser.add_argument("--no-checks", action="store_true",
                        help="disable -OVERIFY runtime-check insertion")
    parser.add_argument("--show-pipeline", action="store_true",
                        help="only print the pipeline string and exit")
    parser.add_argument("--explain-paths", action="store_true",
                        help="run the pipeline one pass at a time, "
                             "symbolically exploring after each, and print "
                             "the per-pass path-count deltas")
    parser.add_argument("--verify", action="store_true",
                        help="run the verification backend on the build")
    parser.add_argument("--run", action="store_true",
                        help="run the build concretely on the workload's "
                             "sample input")
    parser.add_argument("--backend", default="symex",
                        help="verification backend spec (default 'symex'; "
                             "e.g. 'symex<searcher=bfs>')")
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="solver-knowledge store file for --verify: "
                             "primes the solver from past runs and "
                             "memoizes the verification (see "
                             "docs/service.md)")
    parser.add_argument("--input-bytes", type=int, default=None,
                        help="symbolic input size for --verify (default: "
                             "the workload's suggested size)")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="verification budget in seconds (default 60)")
    parser.add_argument("--list-workloads", action="store_true",
                        help="list registered workloads and exit")
    parser.add_argument("--list-passes", action="store_true",
                        help="list registered passes and exit")
    parser.add_argument("--list-levels", action="store_true",
                        help="print every level's pipeline string and exit")
    return parser


def _list_workloads() -> int:
    for workload in all_workloads():
        print(f"{workload.name:<12} [{workload.category}] "
              f"{workload.description}")
    return 0


def _list_passes() -> int:
    for info in registered_passes():
        params = ", ".join(p.key for p in info.params)
        suffix = f"  <{params}>" if params else ""
        print(f"{info.name:<16} {info.description}{suffix}")
    return 0


def _list_levels() -> int:
    for level, pipeline in LEVEL_PIPELINES.items():
        print(f"{level}:\n  {pipeline}")
    return 0


def _explain_paths(source: str, name: str, options: CompileOptions,
                   spec: PipelineSpec, input_bytes: int,
                   timeout: float) -> int:
    """Run the pipeline one pass at a time, symbolically exploring the
    module after each, and print every pass's path-count delta.  This
    attributes the -O0 → -OVERIFY path collapse to individual passes
    instead of reporting only the endpoints."""
    from .symex import SymexLimits, explore

    full_source = link_sources(source, options)
    unit = parse_minic(full_source)
    analyze(unit)
    module = lower(unit, name)
    verify_module(module)
    limits = SymexLimits(timeout_seconds=timeout)

    def count_paths():
        stats = explore(module, input_bytes, limits=limits).stats
        return stats.total_paths, stats.termination_reason

    baseline, truncated = count_paths()
    print(f"path counts over {input_bytes} symbolic input bytes "
          f"(single pipeline iteration):")
    marker = f"  [{truncated} budget hit]" if truncated else ""
    print(f"  {'(front end)':<36} {baseline:>7} paths{marker}")
    analyses = AnalysisManager()
    previous = baseline
    for pass_spec in spec.passes:
        stage = build_pipeline_from_spec(PipelineSpec((pass_spec,)),
                                         analyses=analyses)
        stage.run(module)
        verify_module(module)
        paths, truncated = count_paths()
        delta = f"{paths - previous:+d}" if paths != previous else ""
        marker = f"  [{truncated} budget hit]" if truncated else ""
        print(f"  {format_pass(pass_spec):<36} {paths:>7} paths  "
              f"{delta}{marker}")
        previous = paths
    removed = baseline - previous
    print(f"total    : {baseline} -> {previous} paths "
          f"({removed} removed, {removed / baseline:.0%})" if baseline
          else f"total    : {baseline} -> {previous} paths")
    return 0


def _serve_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the verification service: an async front door "
                    "accepting compile-and-verify jobs over a local "
                    "socket, backed by a persistent solver-knowledge "
                    "store (see docs/service.md).")
    parser.add_argument("socket", help="unix-domain socket path to serve on")
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="solver-knowledge store file (default: "
                             "memory-only, nothing persists)")
    parser.add_argument("--backend", default="symex",
                        help="verification backend spec for every job "
                             "(default 'symex')")
    parser.add_argument("--pool", type=int, default=2,
                        help="worker threads verifying concurrently "
                             "(default 2)")
    args = parser.parse_args(argv)
    from .service import VerificationServer

    server = VerificationServer(args.socket, store_path=args.store,
                                backend=args.backend, pool_size=args.pool)
    print(f"serving  : {args.socket}")
    print(f"store    : {args.store or '(memory-only)'}")
    print(f"backend  : {server.backend.describe()}  pool={args.pool}")
    try:
        server.run()
    except KeyboardInterrupt:
        pass
    stats = server.stats
    print(f"done     : {stats['jobs_completed']} jobs "
          f"({stats['memo_hits']} memo hits, "
          f"{stats['jobs_deduped']} deduped, "
          f"{stats['jobs_failed']} failed)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "fuzz":
        from .fuzz.cli import fuzz_main
        return fuzz_main(argv[1:])
    if argv and argv[0] == "relcheck":
        from .relcheck.cli import relcheck_main
        return relcheck_main(argv[1:])
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_workloads:
        return _list_workloads()
    if args.list_passes:
        return _list_passes()
    if args.list_levels:
        return _list_levels()

    try:
        level = parse_opt_level(args.level)
    except ValueError as exc:
        parser.error(str(exc))

    if args.source:
        try:
            with open(args.source, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            parser.error(f"cannot read {args.source}: {exc}")
        name = args.source
        input_bytes = args.input_bytes if args.input_bytes is not None else 4
        sample_input = b"the quick brown fox"
    elif args.workload:
        try:
            workload = get_workload(args.workload)
        except KeyError as exc:
            parser.error(str(exc.args[0]))
        source, name = workload.source, workload.name
        input_bytes = args.input_bytes if args.input_bytes is not None \
            else workload.default_input_bytes
        sample_input = workload.sample_input
    else:
        parser.error("name a workload or pass --source FILE "
                     "(--list-workloads shows what is registered)")

    options = CompileOptions(level=level,
                             enable_runtime_checks=not args.no_checks)

    if args.explain_paths:
        try:
            if args.passes is not None:
                spec = parse_pipeline(args.passes)
            else:
                spec = with_runtime_checks(level_spec(level),
                                           not args.no_checks)
                spec = with_entry_points(spec, {"main"})
            return _explain_paths(source, name, options, spec,
                                  input_bytes, args.timeout)
        except (CompileError, PipelineSyntaxError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    try:
        if args.passes is not None:
            spec = parse_pipeline(args.passes)
            if args.show_pipeline:
                print(format_pipeline(spec))
                return 0
            start = time.perf_counter()
            full_source = link_sources(source, options)
            unit = parse_minic(full_source)
            analyze(unit)
            module = lower(unit, name)
            pipeline = build_pipeline_from_spec(spec)
            pipeline.run_until_fixpoint(module)
            verify_module(module)
            elapsed = time.perf_counter() - start
            pipeline_text = format_pipeline(spec)
            instruction_count = module.instruction_count()
            analysis_stats = pipeline.analyses.stats
        else:
            if args.show_pipeline:
                print(level_spec_string(level))
                return 0
            session = CompilerSession()
            result = session.compile(source, options)
            module = result.module
            elapsed = result.compile_seconds
            pipeline_text = result.pipeline_text
            instruction_count = result.instruction_count
            analysis_stats = result.analysis_stats
    except (CompileError, PipelineSyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(f"workload : {name}")
    print(f"level    : {level if args.passes is None else '(raw --passes)'}")
    print(f"pipeline : {pipeline_text}")
    print(f"compiled : {instruction_count} instructions "
          f"in {elapsed:.3f}s")
    if analysis_stats is not None:
        print(f"analysis : {analysis_stats.hits} hits / "
              f"{analysis_stats.misses} misses "
              f"({analysis_stats.hit_rate:.0%} hit rate, "
              f"{analysis_stats.transfers} transferred)")

    request = VerificationRequest(symbolic_input_bytes=input_bytes,
                                  concrete_input=sample_input,
                                  timeout_seconds=args.timeout)

    if args.verify:
        try:
            backend = make_backend(args.backend, store=args.store or "")
        except BackendSpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(f"known backends: {', '.join(backend_names())}",
                  file=sys.stderr)
            return 1
        outcome = backend.verify(module, request)
        reason = outcome.termination_reason or \
            ("timeout" if outcome.timed_out else "")
        budget = f" ({reason} budget hit)" if reason else ""
        print(f"verify   : {outcome.backend}: {outcome.paths} paths, "
              f"{outcome.errors} errors, "
              f"{outcome.instructions} instructions "
              f"in {outcome.seconds:.3f}s"
              f"{budget}"
              f"{f' [{outcome.provenance}]' if args.store else ''}")
        if outcome.engine_errors:
            print(f"  warning: {outcome.engine_errors} path(s) abandoned "
                  f"to contained engine errors")
        for signature in sorted(outcome.bug_signatures):
            print(f"  bug    : {', '.join(signature)}")

    if args.run:
        outcome = make_backend("interp").verify(module, request)
        print(f"run      : returned {outcome.return_value}, "
              f"{outcome.instructions} instructions "
              f"in {outcome.seconds:.3f}s"
              f"{' (crashed)' if outcome.errors else ''}")

    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `python -m repro --list-passes | head`
        sys.exit(0)
