"""Scalar replacement of aggregates (SROA).

"A compiler can easily help by converting values that reside in memory to
register values, and by splitting large objects into independent smaller
objects, thereby reducing the opportunities for memory access aliasing."
(§3, Instruction simplification.)

The pass splits an alloca of a struct (or small array) into one alloca per
field/element when every access goes through a GEP with a constant offset
that falls entirely inside one field.  mem2reg can then promote the pieces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis import AnalysisManager, PreservedAnalyses
from ..ir import (
    AllocaInst, ArrayType, ConstantInt, Function, GEPInst, Instruction,
    IntType, LoadInst, PointerType, StoreInst, StructType, Type,
)
from .pass_manager import Pass


def _field_layout(ty: Type) -> Optional[List[Tuple[int, Type]]]:
    """(byte offset, type) of each scalar piece, or None for non-aggregates
    and aggregates with non-scalar pieces."""
    if isinstance(ty, StructType):
        layout = []
        for index, field in enumerate(ty.fields):
            if not (field.is_integer or field.is_pointer):
                return None
            layout.append((ty.field_offset(index), field))
        return layout
    if isinstance(ty, ArrayType):
        if not (ty.element.is_integer or ty.element.is_pointer):
            return None
        if ty.count > 16:
            return None  # splitting huge arrays explodes the IR
        size = ty.element.size_in_bytes()
        return [(i * size, ty.element) for i in range(ty.count)]
    return None


class ScalarReplacementOfAggregates(Pass):
    """Split aggregate allocas into per-field scalar allocas."""

    name = "sroa"

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        changed = False
        for inst in list(function.instructions()):
            if isinstance(inst, AllocaInst):
                changed |= self._try_split(function, inst)
        if not changed:
            return PreservedAnalyses.unchanged()
        # Splitting rewrites allocas/GEPs in place; the CFG is untouched.
        return PreservedAnalyses.cfg_preserving()

    def _try_split(self, function: Function, alloca: AllocaInst) -> bool:
        layout = _field_layout(alloca.allocated_type)
        if layout is None:
            return False
        offsets = {offset: ty for offset, ty in layout}

        # Every use must be a GEP with a constant offset matching exactly one
        # field, and every use of that GEP must be a whole-field load/store.
        accesses: List[Tuple[GEPInst, int]] = []
        for use in alloca.uses:
            user = use.user
            if not isinstance(user, GEPInst) or user.base is not alloca:
                return False
            offset = 0
            for index in user.indices:
                if not isinstance(index, ConstantInt):
                    return False
                offset += index.signed_value
            if offset not in offsets:
                return False
            field_type = offsets[offset]
            for gep_use in user.uses:
                gep_user = gep_use.user
                if isinstance(gep_user, LoadInst) and \
                        gep_user.type == field_type:
                    continue
                if isinstance(gep_user, StoreInst) and \
                        gep_user.pointer is user and \
                        gep_user.value.type == field_type:
                    continue
                return False
            accesses.append((user, offset))
        if not accesses:
            return False

        # Create one scalar alloca per field and rewrite the accesses.
        assert alloca.parent is not None
        replacements: Dict[int, AllocaInst] = {}
        for offset, field_type in layout:
            piece = AllocaInst(field_type,
                               function.next_name(f"{alloca.name}.f{offset}"))
            alloca.parent.insert_before(alloca, piece)
            replacements[offset] = piece
        for gep, offset in accesses:
            gep.replace_all_uses_with(replacements[offset])
            gep.erase_from_parent()
        alloca.erase_from_parent()
        self.stats.aggregates_split += 1
        return True


from .registry import register_pass

register_pass(
    "sroa", ScalarReplacementOfAggregates,
    description="split aggregates into scalar allocas")
