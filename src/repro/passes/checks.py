"""Runtime check insertion.

"Recent versions of Clang and GCC can emit run-time checks for various forms
of illegal behavior, transforming these various failures into run-time
crashes.  This makes verification simpler, as tools now only need to check
for one type of failure (i.e., crashes)." (§3, Runtime checks.)

This pass inserts explicit null-pointer checks before loads and stores whose
address cannot be proven safe statically (i.e. it is not derived from a
stack slot or global with a constant offset).  A failed check calls the
``__overify_check_fail`` routine and then reaches ``unreachable``; both the
concrete interpreter and the symbolic executor treat that as a program
crash, which is exactly how the paper's tools consume such checks.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis import AnalysisManager, PreservedAnalyses, underlying_object
from ..ir import (
    AllocaInst, BasicBlock, BranchInst, CallInst, ConstantInt, Function,
    FunctionType, GlobalVariable, ICmpInst, ICmpPredicate, Instruction,
    LoadInst, Module, Opcode, PointerType, StoreInst, UnreachableInst,
    CastInst, I64, VOID,
)
from .pass_manager import Pass

#: Name of the failure handler the checks call; verification tools treat a
#: call to it as a crash.
CHECK_FAIL_FUNCTION = "__overify_check_fail"


def get_or_create_check_fail(module: Module) -> Function:
    """Return (creating if needed) the declaration of the check-failure hook."""
    existing = module.get_function_or_none(CHECK_FAIL_FUNCTION)
    if existing is not None:
        return existing
    return module.create_function(
        CHECK_FAIL_FUNCTION, FunctionType(VOID, ()), [])


def _statically_safe(pointer) -> bool:
    """A pointer is statically safe when it is an alloca/global plus a
    constant offset (the flat memory model guarantees these are valid)."""
    info = underlying_object(pointer)
    return isinstance(info.base, (AllocaInst, GlobalVariable)) and \
        info.has_constant_offset


class InsertRuntimeChecks(Pass):
    """Insert null-pointer checks before unproven memory accesses."""

    name = "runtime-checks"

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        module = function.parent
        assert module is not None
        fail = get_or_create_check_fail(module)
        changed = False
        # Snapshot the accesses first: inserting checks splits blocks.
        accesses: List[Instruction] = [
            inst for inst in function.instructions()
            if isinstance(inst, (LoadInst, StoreInst))
            and not _statically_safe(inst.pointer)
            and "overify.checked" not in inst.metadata]
        for inst in accesses:
            self._insert_null_check(function, fail, inst)
            self.stats.checks_inserted += 1
            changed = True
        # Each check splits a block and adds a failure arm.
        return PreservedAnalyses.none() if changed \
            else PreservedAnalyses.unchanged()

    def _insert_null_check(self, function: Function, fail: Function,
                           access: Instruction) -> None:
        block = access.parent
        assert block is not None
        pointer = access.pointer  # type: ignore[attr-defined]
        access.metadata["overify.checked"] = True

        # Split the block before the access.
        index = block.instructions.index(access)
        continuation = BasicBlock(function.next_name("check.cont"))
        function.insert_block_after(block, continuation)
        for inst in block.instructions[index:]:
            block.remove_instruction(inst)
            continuation.append_instruction(inst)
        for succ in continuation.successors():
            for phi in succ.phis():
                for i, incoming in enumerate(phi.incoming_blocks):
                    if incoming is block:
                        phi.incoming_blocks[i] = continuation

        fail_block = BasicBlock(function.next_name("check.fail"))
        function.insert_block_after(block, fail_block)
        fail_block.append_instruction(CallInst(fail, [], VOID))
        fail_block.append_instruction(UnreachableInst())

        as_int = CastInst(Opcode.PTRTOINT, pointer, I64,
                          function.next_name("check.addr"))
        block.append_instruction(as_int)
        is_valid = ICmpInst(ICmpPredicate.NE, as_int, ConstantInt(I64, 0),
                            function.next_name("check.ok"))
        block.append_instruction(is_valid)
        block.append_instruction(BranchInst(continuation, is_valid, fail_block))


from .registry import register_pass

register_pass(
    "runtime-checks", InsertRuntimeChecks,
    description="insert runtime checks so every failure becomes a crash")
