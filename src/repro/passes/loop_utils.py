"""Shared machinery for the loop transformations (unswitching, unrolling,
LICM): preheader creation, LCSSA-style exit phis, and whole-loop cloning."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis import DominatorTree, Loop
from ..ir import (
    BasicBlock, BranchInst, Function, Instruction, PhiInst, Value,
)


def ensure_preheader(loop: Loop) -> Optional[BasicBlock]:
    """Return the loop's preheader, creating one if necessary.

    A preheader is an out-of-loop block whose only successor is the loop
    header.  If the header has several out-of-loop predecessors (or one that
    also branches elsewhere), a new block is inserted and all outside edges
    are redirected through it.
    """
    existing = loop.preheader()
    if existing is not None:
        return existing
    header = loop.header
    function = header.parent
    if function is None:
        return None
    outside_preds = [p for p in header.predecessors() if not loop.contains(p)]
    if not outside_preds:
        return None

    preheader = BasicBlock(function.next_name("preheader"))
    function.insert_block_after(outside_preds[0], preheader)
    builder_branch = BranchInst(header)
    preheader.append_instruction(builder_branch)

    # Header phis: merge the values arriving from outside into new phis that
    # live in the preheader.
    for phi in header.phis():
        outside_entries = [(value, pred) for value, pred in phi.incoming()
                           if pred in outside_preds]
        if not outside_entries:
            continue
        if len(outside_entries) == 1 and len(outside_preds) == 1:
            value = outside_entries[0][0]
        else:
            merge = PhiInst(phi.type, function.next_name(f"{phi.name}.ph"))
            preheader.insert_instruction(0, merge)
            for value, pred in outside_entries:
                merge.add_incoming(value, pred)
            value = merge
        for _, pred in outside_entries:
            phi.remove_incoming(pred)
        phi.add_incoming(value, preheader)

    # Redirect the outside edges to the preheader.
    for pred in outside_preds:
        term = pred.terminator
        if term is None:
            continue
        for index, op in enumerate(term.operands):
            if op is header:
                term.set_operand(index, preheader)
    return preheader


def loop_values_used_outside(loop: Loop) -> List[Instruction]:
    """Instructions defined inside the loop with at least one use outside it."""
    result: List[Instruction] = []
    for block in loop.blocks:
        for inst in block.instructions:
            if inst.type.is_void:
                continue
            for use in inst.uses:
                user = use.user
                if isinstance(user, Instruction) and user.parent is not None \
                        and not loop.contains(user.parent):
                    result.append(inst)
                    break
    return result


def insert_lcssa_phis(loop: Loop, exit_block: BasicBlock,
                      domtree: DominatorTree) -> bool:
    """Rewrite out-of-loop uses of loop-defined values to go through phis in
    ``exit_block`` (a restricted LCSSA construction for single-exit loops).

    The caller supplies a current dominator tree (normally from the analysis
    manager).  Returns False if some value cannot safely be rewritten (the
    caller should then give up on the transformation).
    """
    function = loop.header.parent
    assert function is not None
    in_loop_preds = [p for p in exit_block.predecessors() if loop.contains(p)]
    if not in_loop_preds:
        return False
    for inst in loop_values_used_outside(loop):
        assert inst.parent is not None
        # The definition must dominate every in-loop predecessor of the exit,
        # otherwise a phi of `inst` from each predecessor would be malformed.
        if not all(domtree.dominates(inst.parent, pred)
                   for pred in in_loop_preds):
            return False
        phi = PhiInst(inst.type, function.next_name(f"{inst.name}.lcssa"))
        exit_block.insert_instruction(0, phi)
        for pred in in_loop_preds:
            phi.add_incoming(inst, pred)
        for use in list(inst.uses):
            user = use.user
            if user is phi:
                continue
            if isinstance(user, Instruction) and user.parent is not None and \
                    not loop.contains(user.parent):
                if isinstance(user, PhiInst) and user.parent is exit_block:
                    continue  # exit phis are updated by the cloning code
                user.set_operand(use.index, phi)
    return True


@dataclass
class ClonedLoop:
    """The result of cloning a loop's blocks."""

    block_map: Dict[int, BasicBlock]
    value_map: Dict[int, Value]
    blocks: List[BasicBlock]

    def mapped_block(self, block: BasicBlock) -> BasicBlock:
        return self.block_map.get(id(block), block)

    def mapped_value(self, value: Value) -> Value:
        if isinstance(value, BasicBlock):
            return self.block_map.get(id(value), value)
        return self.value_map.get(id(value), value)


def clone_loop(loop: Loop, name_suffix: str) -> ClonedLoop:
    """Clone every block of ``loop`` into its function.

    Branch targets and operands that refer to loop-internal blocks/values are
    remapped to their clones; references to values defined outside the loop
    (including the preheader) are left untouched.  The caller is responsible
    for wiring the clone into the CFG and for updating exit-block phis.
    """
    function = loop.header.parent
    assert function is not None
    block_map: Dict[int, BasicBlock] = {}
    value_map: Dict[int, Value] = {}
    cloned_blocks: List[BasicBlock] = []

    insert_after = loop.blocks[-1] if loop.blocks[-1].parent is function \
        else function.blocks[-1]
    for block in loop.blocks:
        clone = BasicBlock(function.next_name(f"{block.name}.{name_suffix}"))
        block_map[id(block)] = clone
        cloned_blocks.append(clone)
    for clone in cloned_blocks:
        function.insert_block_after(insert_after, clone)
        insert_after = clone

    cloned_instructions: List[Instruction] = []
    for block, clone_block in zip(loop.blocks, cloned_blocks):
        for inst in block.instructions:
            clone = inst.clone()
            if not clone.type.is_void:
                clone.name = function.next_name(inst.name or "c")
            clone_block.append_instruction(clone)
            value_map[id(inst)] = clone
            cloned_instructions.append(clone)

    for clone in cloned_instructions:
        for index, operand in enumerate(list(clone.operands)):
            if isinstance(operand, BasicBlock):
                mapped: Optional[Value] = block_map.get(id(operand))
            else:
                mapped = value_map.get(id(operand))
            if mapped is not None:
                clone.set_operand(index, mapped)
        if isinstance(clone, PhiInst):
            clone.incoming_blocks = [
                block_map.get(id(b), b) for b in clone.incoming_blocks]

    return ClonedLoop(block_map=block_map, value_map=value_map,
                      blocks=cloned_blocks)


def add_cloned_incoming_to_exit_phis(loop: Loop, exit_blocks: List[BasicBlock],
                                     cloned: ClonedLoop) -> None:
    """For every phi in an exit block, add incoming entries for the cloned
    in-loop predecessors, carrying the cloned values."""
    for exit_block in exit_blocks:
        for phi in exit_block.phis():
            for value, pred in list(phi.incoming()):
                if loop.contains(pred):
                    phi.add_incoming(cloned.mapped_value(value),
                                     cloned.mapped_block(pred))


def single_exit_block(loop: Loop) -> Optional[BasicBlock]:
    """The loop's unique exit block, if it has exactly one and every
    predecessor of that block is inside the loop."""
    exits = loop.exit_blocks()
    if len(exits) != 1:
        return None
    exit_block = exits[0]
    if any(not loop.contains(p) for p in exit_block.predecessors()):
        return None
    return exit_block
