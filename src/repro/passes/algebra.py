"""Algebraic simplification: strength reduction and canonicalization.

The deeper rewrites ``instcombine``'s identity peepholes do not attempt:

* **strength reduction** — multiply/unsigned-divide/unsigned-remainder by a
  power of two become shift/mask operations, which the solver's bit-level
  reasoning handles far more cheaply than multiplication;
* **comparison canonicalization** — constants move to the right-hand side
  (so GVN sees one form per comparison), ``not (a cmp b)`` becomes the
  inverse comparison, and unsigned trivia like ``x <u 1`` collapse to
  equality tests;
* **constant reassociation** — ``(x + c1) + c2`` refolds to ``x + (c1+c2)``,
  re-exposing constants that inlining and GEP lowering buried;
* **or-of-equalities range merging** — ``c==9 | c==10 | ... | c==13``
  becomes ``(c-9) <=u 4``, the classic character-class check.  After the
  front end flattens short-circuit chains this is the dominant shape of
  the branch-free classification code in the execution libc, and merging
  it shrinks every path condition the symbolic executor carries.

Everything here rewrites values only; branch targets are never touched, so
all CFG-derived analyses survive a run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis import AnalysisManager, PreservedAnalyses
from ..ir import (
    BinaryInst, CastInst, ConstantInt, Function, ICmpInst, ICmpPredicate,
    Instruction, IntType, Opcode, SelectInst, Value, I1,
)
from .pass_manager import Pass


def _constant(value: Value) -> Optional[ConstantInt]:
    return value if isinstance(value, ConstantInt) else None


def _power_of_two(constant: ConstantInt) -> Optional[int]:
    """log2 of the constant's unsigned value, if it is a power of two."""
    value = constant.value
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


def _insert_before(anchor: Instruction, new_inst: Instruction) -> Instruction:
    assert anchor.parent is not None
    if not new_inst.name and not new_inst.type.is_void:
        function = anchor.parent.parent
        if function is not None:
            new_inst.name = function.next_name("alg")
    anchor.parent.insert_before(anchor, new_inst)
    return new_inst


class AlgebraicSimplify(Pass):
    """Strength reduction, canonicalization, and range merging."""

    name = "algebraic-simplify"

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        changed = False
        progress = True
        while progress:
            progress = False
            for block in function.blocks:
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue
                    replacement = self._simplify(inst)
                    if replacement is not None and replacement is not inst:
                        inst.replace_all_uses_with(replacement)
                        inst.erase_from_parent()
                        progress = True
                        changed = True
        if not changed:
            return PreservedAnalyses.unchanged()
        # Value rewrites only: block structure and branch targets survive.
        return PreservedAnalyses.cfg_preserving()

    def _simplify(self, inst: Instruction) -> Optional[Value]:
        if isinstance(inst, BinaryInst):
            result = self._strength_reduce(inst)
            if result is None:
                result = self._reassociate(inst)
            if result is None:
                result = self._invert_compare(inst)
            if result is None:
                result = self._merge_equality_ranges(inst)
            if result is None:
                result = self._double_negation(inst)
            return result
        if isinstance(inst, ICmpInst):
            return self._canonicalize_compare(inst)
        if isinstance(inst, SelectInst):
            return self._select_to_arith(inst)
        return None

    # ----------------------------------------------------- strength reduce
    def _strength_reduce(self, inst: BinaryInst) -> Optional[Value]:
        ty = inst.type
        assert isinstance(ty, IntType)
        crhs = _constant(inst.rhs)
        if crhs is None:
            return None
        shift = _power_of_two(crhs)
        if shift is None or shift == 0:
            return None
        if inst.opcode is Opcode.MUL:
            replacement = BinaryInst(Opcode.SHL, inst.lhs,
                                     ConstantInt(ty, shift))
        elif inst.opcode is Opcode.UDIV:
            replacement = BinaryInst(Opcode.LSHR, inst.lhs,
                                     ConstantInt(ty, shift))
        elif inst.opcode is Opcode.UREM:
            replacement = BinaryInst(Opcode.AND, inst.lhs,
                                     ConstantInt(ty, crhs.value - 1))
        else:
            return None
        self.stats.expressions_simplified += 1
        return _insert_before(inst, replacement)

    # -------------------------------------------------------- reassociation
    def _reassociate(self, inst: BinaryInst) -> Optional[Value]:
        """(x op c1) op c2 -> x op (c1 op c2) for associative op ∈ {+,&,|,^}
        (and the add/sub mixture via negation)."""
        ty = inst.type
        assert isinstance(ty, IntType)
        crhs = _constant(inst.rhs)
        if crhs is None or not isinstance(inst.lhs, BinaryInst):
            return None
        inner = inst.lhs
        if inner is inst or inner.lhs is inst:
            # Self-referential chain (non-SSA input); rewriting would
            # rebuild the same instruction forever.
            return None
        cinner = _constant(inner.rhs)
        if cinner is None:
            return None
        op = inst.opcode
        if op in (Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.MUL):
            if inner.opcode is not op:
                return None
            from ..ir import eval_binary
            folded = eval_binary(op, ty, cinner.value, crhs.value)
            if folded is None:
                return None
            replacement = BinaryInst(op, inner.lhs, ConstantInt(ty, folded))
        elif op in (Opcode.ADD, Opcode.SUB):
            if inner.opcode not in (Opcode.ADD, Opcode.SUB):
                return None
            # Normalize both constants to their added contribution.
            outer = crhs.value if op is Opcode.ADD else -crhs.value
            innerc = cinner.value if inner.opcode is Opcode.ADD \
                else -cinner.value
            total = (outer + innerc) & ty.mask
            replacement = BinaryInst(Opcode.ADD, inner.lhs,
                                     ConstantInt(ty, total))
        else:
            return None
        self.stats.expressions_simplified += 1
        return _insert_before(inst, replacement)

    # --------------------------------------------------- compare rewriting
    def _canonicalize_compare(self, inst: ICmpInst) -> Optional[Value]:
        # Constant operand to the right: one canonical spelling per compare.
        if isinstance(inst.lhs, ConstantInt) and \
                not isinstance(inst.rhs, ConstantInt):
            replacement = ICmpInst(inst.predicate.swapped(), inst.rhs,
                                   inst.lhs)
            self.stats.comparisons_canonicalized += 1
            return _insert_before(inst, replacement)
        crhs = _constant(inst.rhs)
        if crhs is None:
            return None
        # Unsigned borderline forms collapse to equality tests.
        if crhs.is_one and inst.predicate is ICmpPredicate.ULT:
            replacement = ICmpInst(ICmpPredicate.EQ, inst.lhs,
                                   ConstantInt(crhs.type, 0))
            self.stats.comparisons_canonicalized += 1
            return _insert_before(inst, replacement)
        if crhs.is_one and inst.predicate is ICmpPredicate.UGE:
            replacement = ICmpInst(ICmpPredicate.NE, inst.lhs,
                                   ConstantInt(crhs.type, 0))
            self.stats.comparisons_canonicalized += 1
            return _insert_before(inst, replacement)
        if crhs.is_zero and inst.predicate is ICmpPredicate.ULE:
            replacement = ICmpInst(ICmpPredicate.EQ, inst.lhs, inst.rhs)
            self.stats.comparisons_canonicalized += 1
            return _insert_before(inst, replacement)
        return None

    def _invert_compare(self, inst: BinaryInst) -> Optional[Value]:
        """xor (icmp pred a b), true  ->  icmp pred⁻¹ a b."""
        if inst.opcode is not Opcode.XOR or inst.type != I1:
            return None
        compare: Optional[ICmpInst] = None
        other: Optional[Value] = None
        for a, b in ((inst.lhs, inst.rhs), (inst.rhs, inst.lhs)):
            if isinstance(a, ICmpInst) and isinstance(b, ConstantInt) and \
                    b.is_one:
                compare, other = a, b
                break
        if compare is None:
            return None
        replacement = ICmpInst(compare.predicate.inverse(), compare.lhs,
                               compare.rhs)
        self.stats.comparisons_canonicalized += 1
        return _insert_before(inst, replacement)

    def _double_negation(self, inst: BinaryInst) -> Optional[Value]:
        """0 - (0 - x) -> x  and  (x ^ -1) ^ -1 -> x."""
        ty = inst.type
        assert isinstance(ty, IntType)
        if inst.opcode is Opcode.SUB:
            clhs = _constant(inst.lhs)
            if clhs is not None and clhs.is_zero and \
                    isinstance(inst.rhs, BinaryInst) and \
                    inst.rhs.opcode is Opcode.SUB:
                inner = inst.rhs
                cinner = _constant(inner.lhs)
                if cinner is not None and cinner.is_zero:
                    self.stats.expressions_simplified += 1
                    return inner.rhs
        if inst.opcode is Opcode.XOR:
            crhs = _constant(inst.rhs)
            if crhs is not None and crhs.is_all_ones and \
                    isinstance(inst.lhs, BinaryInst) and \
                    inst.lhs.opcode is Opcode.XOR:
                inner = inst.lhs
                cinner = _constant(inner.rhs)
                if cinner is not None and cinner.is_all_ones:
                    self.stats.expressions_simplified += 1
                    return inner.lhs
        return None

    # ---------------------------------------------------- range merging
    def _merge_equality_ranges(self, inst: BinaryInst) -> Optional[Value]:
        """or-chain of ``x == cᵢ`` leaves over one ``x``: contiguous runs of
        constants merge into ``(x - lo) <=u (hi - lo)``."""
        if inst.opcode is not Opcode.OR or inst.type != I1:
            return None
        # Only rewrite the root of an or-chain (inner nodes are reached
        # through the root and would otherwise be rebuilt redundantly).
        if any(isinstance(use.user, BinaryInst) and
               use.user.opcode is Opcode.OR and use.user.type == I1
               for use in inst.uses):
            return None
        leaves: List[Value] = []
        self._flatten_or(inst, leaves)
        if len(leaves) < 3:
            return None
        #: id(x) -> (x, sorted unique constants compared equal to it)
        groups: Dict[int, Tuple[Value, List[int]]] = {}
        others: List[Value] = []
        for leaf in leaves:
            if isinstance(leaf, ICmpInst) and \
                    leaf.predicate is ICmpPredicate.EQ and \
                    isinstance(leaf.rhs, ConstantInt) and \
                    isinstance(leaf.lhs.type, IntType):
                entry = groups.setdefault(id(leaf.lhs), (leaf.lhs, []))
                entry[1].append(leaf.rhs.value)
            else:
                others.append(leaf)
        terms: List[Tuple[Value, int, int]] = []  # (x, lo, hi) runs
        merged_any = False
        for subject, constants in groups.values():
            runs = _contiguous_runs(sorted(set(constants)))
            for lo, hi in runs:
                terms.append((subject, lo, hi))
                if hi - lo >= 2:
                    merged_any = True
        if not merged_any:
            return None
        # Rebuild: range checks for the runs, then the leftover terms.
        pieces: List[Value] = []
        for subject, lo, hi in terms:
            ty = subject.type
            assert isinstance(ty, IntType)
            if lo == hi:
                check: Instruction = ICmpInst(
                    ICmpPredicate.EQ, subject, ConstantInt(ty, lo))
            else:
                shifted: Value = subject
                if lo != 0:
                    shifted = _insert_before(inst, BinaryInst(
                        Opcode.SUB, subject, ConstantInt(ty, lo)))
                check = ICmpInst(ICmpPredicate.ULE, shifted,
                                 ConstantInt(ty, hi - lo))
            pieces.append(_insert_before(inst, check))
        pieces.extend(others)
        result = pieces[0]
        for piece in pieces[1:]:
            result = _insert_before(inst,
                                    BinaryInst(Opcode.OR, result, piece))
        self.stats.expressions_simplified += 1
        return result

    def _flatten_or(self, value: Value, leaves: List[Value]) -> None:
        if isinstance(value, BinaryInst) and value.opcode is Opcode.OR and \
                value.type == I1:
            self._flatten_or(value.lhs, leaves)
            self._flatten_or(value.rhs, leaves)
        else:
            leaves.append(value)

    # ------------------------------------------------------------- selects
    def _select_to_arith(self, inst: SelectInst) -> Optional[Value]:
        """select c, 1, 0 over iN -> zext c (branch-free boolean widening)."""
        tv, fv = _constant(inst.true_value), _constant(inst.false_value)
        ty = inst.type
        if not isinstance(ty, IntType) or ty == I1:
            return None
        if tv is not None and fv is not None and tv.is_one and fv.is_zero \
                and inst.condition.type == I1:
            self.stats.expressions_simplified += 1
            return _insert_before(
                inst, CastInst(Opcode.ZEXT, inst.condition, ty))
        return None


def _contiguous_runs(sorted_values: List[int]) -> List[Tuple[int, int]]:
    """Group a sorted list of integers into maximal [lo, hi] runs."""
    runs: List[Tuple[int, int]] = []
    for value in sorted_values:
        if runs and value == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], value)
        else:
            runs.append((value, value))
    return runs


from .registry import register_pass

register_pass(
    "algebraic-simplify", AlgebraicSimplify,
    description="strength-reduce, canonicalize compares, merge ranges")
