"""Loop-invariant code motion.

Hoists computations that do not change across iterations into the loop's
preheader.  For a symbolic executor this removes work that would otherwise
be re-interpreted (and re-encoded into constraints) on every iteration of
every explored path.
"""

from __future__ import annotations

from typing import List

from ..analysis import (
    AnalysisManager, Loop, PreservedAnalyses, underlying_object,
)
from ..ir import (
    AllocaInst, CallInst, Function, GlobalVariable, Instruction, LoadInst,
    Opcode, PhiInst, StoreInst,
)
from .loop_utils import ensure_preheader
from .pass_manager import Pass


def _loop_has_stores_or_calls(loop: Loop) -> bool:
    for block in loop.blocks:
        for inst in block.instructions:
            if isinstance(inst, (StoreInst, CallInst)):
                return True
    return False


class LoopInvariantCodeMotion(Pass):
    """Hoist loop-invariant pure instructions to the preheader."""

    name = "licm"

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        hoisted = False
        loop_info = analyses.loop_info(function)
        # Process inner loops first so invariants bubble outward.
        for loop in sorted(loop_info.loops, key=lambda l: -l.depth):
            hoisted |= self._hoist(loop)
        # `changed` reports optimization progress (hoists) to the fixpoint
        # driver.  Incidental mutation without progress — synthesizing a
        # preheader for a loop where nothing was hoistable — bumps the
        # function epoch, so stale cached analyses recompute on next lookup
        # without forcing another pipeline iteration.
        return PreservedAnalyses.none() if hoisted \
            else PreservedAnalyses.unchanged()

    def _hoist(self, loop: Loop) -> bool:
        preheader = ensure_preheader(loop)
        if preheader is None:
            return False
        terminator = preheader.terminator
        if terminator is None:
            return False
        loop_writes_memory = _loop_has_stores_or_calls(loop)
        changed = False
        progress = True
        while progress:
            progress = False
            for block in loop.blocks:
                for inst in list(block.instructions):
                    if not self._hoistable(inst, loop, loop_writes_memory):
                        continue
                    # Hoisting is only valid if the definition dominates every
                    # use after the move; the preheader dominates the whole
                    # loop, so this always holds for in-loop uses.
                    block.remove_instruction(inst)
                    preheader.insert_before(terminator, inst)
                    self.stats.instructions_hoisted += 1
                    progress = True
                    changed = True
        return changed

    def _hoistable(self, inst: Instruction, loop: Loop,
                   loop_writes_memory: bool) -> bool:
        if isinstance(inst, (PhiInst, StoreInst, CallInst)):
            return False
        if inst.is_terminator or inst.opcode is Opcode.ALLOCA:
            return False
        if inst.opcode in (Opcode.SDIV, Opcode.UDIV, Opcode.SREM, Opcode.UREM):
            return False  # may trap; only safe if executed unconditionally
        if isinstance(inst, LoadInst):
            # A load may be hoisted when nothing in the loop can write to
            # memory and its address is provably inside a known object with a
            # constant offset, so dereferencing it is safe even on iterations
            # the original loop would never have executed.
            if loop_writes_memory:
                return False
            info = underlying_object(inst.pointer)
            if not isinstance(info.base, (AllocaInst, GlobalVariable)):
                return False
            if info.offset is None or info.offset < 0:
                return False
            if isinstance(info.base, AllocaInst):
                object_size = info.base.allocated_type.size_in_bytes()
            else:
                object_size = info.base.value_type.size_in_bytes()
            if info.offset + inst.type.size_in_bytes() > object_size:
                return False
            if not loop.is_invariant(inst.pointer):
                return False
            return True
        return all(loop.is_invariant(op) for op in inst.operands)


from .registry import register_pass

register_pass(
    "licm", LoopInvariantCodeMotion,
    description="hoist loop-invariant computations into the preheader")
