"""Global value numbering (dominance-based CSE) and redundant load removal.

Eliminating recomputed expressions keeps symbolic expressions small and
shared, and removing redundant loads reduces the number of memory accesses
the verification tool must reason about — both effects the paper groups
under "instruction simplification" and "remove/split memory accesses".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis import (
    AliasResult, AnalysisManager, DominatorTree, PreservedAnalyses, alias,
)
from ..ir import (
    BasicBlock, BinaryInst, CallInst, CastInst, Function, GEPInst, ICmpInst,
    Instruction, LoadInst, Opcode, PhiInst, SelectInst, StoreInst, Value,
)
from .pass_manager import Pass


def _value_key(value: Value) -> Tuple:
    from ..ir import ConstantInt
    if isinstance(value, ConstantInt):
        return ("const", str(value.type), value.value)
    return ("val", id(value))


def _expression_key(inst: Instruction) -> Optional[Tuple]:
    """A hashable key identifying the computation an instruction performs.
    Returns None for instructions that cannot be value numbered."""
    if isinstance(inst, BinaryInst):
        lhs = _value_key(inst.lhs)
        rhs = _value_key(inst.rhs)
        if inst.is_commutative and rhs < lhs:
            lhs, rhs = rhs, lhs
        return (inst.opcode.value, str(inst.type), lhs, rhs)
    if isinstance(inst, ICmpInst):
        return ("icmp", inst.predicate.value, _value_key(inst.lhs),
                _value_key(inst.rhs))
    if isinstance(inst, CastInst):
        return (inst.opcode.value, str(inst.type), _value_key(inst.value))
    if isinstance(inst, SelectInst):
        return ("select", _value_key(inst.condition),
                _value_key(inst.true_value), _value_key(inst.false_value))
    if isinstance(inst, GEPInst):
        return ("gep", _value_key(inst.base),
                tuple(_value_key(i) for i in inst.indices))
    return None


class GlobalValueNumbering(Pass):
    """Dominator-tree scoped hash-based CSE."""

    name = "gvn"

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        domtree = analyses.dominator_tree(function)
        changed = self._number_values(function, domtree)
        changed |= self._eliminate_redundant_loads(function)
        if not changed:
            return PreservedAnalyses.unchanged()
        # CSE erases non-terminator instructions only.
        return PreservedAnalyses.cfg_preserving()

    # ------------------------------------------------------------- CSE
    def _number_values(self, function: Function, domtree: DominatorTree) -> bool:
        changed = False
        available: Dict[Tuple, Instruction] = {}
        # In a function with no stores and no calls, memory never changes, so
        # loads behave like pure expressions and can be value numbered across
        # blocks too (this is what makes the -OVERIFY loop body of the wc
        # kernel fully branch-free after inlining).
        memory_is_constant = not any(
            isinstance(inst, (StoreInst, CallInst))
            for inst in function.instructions())

        def visit(block: BasicBlock) -> None:
            nonlocal changed
            added: List[Tuple] = []
            for inst in list(block.instructions):
                key = _expression_key(inst)
                if key is None and memory_is_constant and \
                        isinstance(inst, LoadInst):
                    key = ("load", str(inst.type), _value_key(inst.pointer))
                if key is None:
                    continue
                existing = available.get(key)
                if existing is not None and existing.parent is not None:
                    inst.replace_all_uses_with(existing)
                    inst.erase_from_parent()
                    self.stats.redundancies_eliminated += 1
                    changed = True
                else:
                    available[key] = inst
                    added.append(key)
            for child in domtree.children.get(block, []):
                visit(child)
            for key in added:
                available.pop(key, None)

        if function.blocks:
            visit(function.entry_block)
        return changed

    # ------------------------------------------------------- load removal
    def _eliminate_redundant_loads(self, function: Function) -> bool:
        """Within each block, forward stored values to subsequent loads of
        the same address and drop repeated loads, killed by intervening
        may-aliasing writes or calls."""
        changed = False
        for block in function.blocks:
            #: address value id -> last known loaded/stored value
            known: Dict[int, Tuple[Value, Value]] = {}
            for inst in list(block.instructions):
                if isinstance(inst, LoadInst):
                    entry = known.get(id(inst.pointer))
                    if entry is not None:
                        inst.replace_all_uses_with(entry[1])
                        inst.erase_from_parent()
                        self.stats.redundancies_eliminated += 1
                        changed = True
                    else:
                        known[id(inst.pointer)] = (inst.pointer, inst)
                elif isinstance(inst, StoreInst):
                    size = inst.value.type.size_in_bytes() \
                        if not inst.value.type.is_void else 8
                    for key, (pointer, _) in list(known.items()):
                        other_size = 8
                        ptr_ty = pointer.type
                        from ..ir import PointerType
                        if isinstance(ptr_ty, PointerType) and \
                                not ptr_ty.pointee.is_void:
                            other_size = ptr_ty.pointee.size_in_bytes()
                        result = alias(inst.pointer, size, pointer, other_size)
                        if result is not AliasResult.NO_ALIAS:
                            del known[key]
                    known[id(inst.pointer)] = (inst.pointer, inst.value)
                elif isinstance(inst, CallInst):
                    known.clear()
        return changed


from .registry import register_pass

register_pass(
    "gvn", GlobalValueNumbering,
    description="eliminate redundant computations by value numbering")
