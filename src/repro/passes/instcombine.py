"""Instruction combining: algebraic simplification and peephole rewrites.

This pass implements the "arithmetic simplifications" half of the paper's
first Table 2 row, plus the peepholes needed to clean up the verbose boolean
code the MiniC front end emits (``zext i1 -> icmp ne 0`` chains).  Removing
these redundant operations shrinks the constraint expressions the symbolic
executor must build — one of the effects the paper credits for the ``-O2``
speedup in Table 1.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisManager, PreservedAnalyses
from ..ir import (
    BinaryInst, CastInst, ConstantInt, Function, ICmpInst, ICmpPredicate,
    Instruction, IntType, Opcode, PhiInst, SelectInst, Value,
)
from .constprop import fold_instruction
from .pass_manager import Pass


def _constant(value: Value) -> Optional[ConstantInt]:
    return value if isinstance(value, ConstantInt) else None


def _simplify_binary(inst: BinaryInst) -> Optional[Value]:
    """Algebraic identities on binary operators."""
    lhs, rhs = inst.lhs, inst.rhs
    clhs, crhs = _constant(lhs), _constant(rhs)
    ty = inst.type
    assert isinstance(ty, IntType)
    op = inst.opcode

    # Canonical zero/identity element simplifications.
    if op is Opcode.ADD:
        if crhs is not None and crhs.is_zero:
            return lhs
        if clhs is not None and clhs.is_zero:
            return rhs
    elif op is Opcode.SUB:
        if crhs is not None and crhs.is_zero:
            return lhs
        if lhs is rhs:
            return ConstantInt(ty, 0)
    elif op is Opcode.MUL:
        if crhs is not None:
            if crhs.is_zero:
                return ConstantInt(ty, 0)
            if crhs.is_one:
                return lhs
        if clhs is not None:
            if clhs.is_zero:
                return ConstantInt(ty, 0)
            if clhs.is_one:
                return rhs
    elif op in (Opcode.UDIV, Opcode.SDIV):
        if crhs is not None and crhs.is_one:
            return lhs
    elif op in (Opcode.UREM, Opcode.SREM):
        if crhs is not None and crhs.is_one:
            return ConstantInt(ty, 0)
    elif op is Opcode.AND:
        if crhs is not None:
            if crhs.is_zero:
                return ConstantInt(ty, 0)
            if crhs.is_all_ones:
                return lhs
        if clhs is not None:
            if clhs.is_zero:
                return ConstantInt(ty, 0)
            if clhs.is_all_ones:
                return rhs
        if lhs is rhs:
            return lhs
    elif op is Opcode.OR:
        if crhs is not None:
            if crhs.is_zero:
                return lhs
            if crhs.is_all_ones:
                return ConstantInt(ty, ty.mask)
        if clhs is not None:
            if clhs.is_zero:
                return rhs
            if clhs.is_all_ones:
                return ConstantInt(ty, ty.mask)
        if lhs is rhs:
            return lhs
    elif op is Opcode.XOR:
        if crhs is not None and crhs.is_zero:
            return lhs
        if clhs is not None and clhs.is_zero:
            return rhs
        if lhs is rhs:
            return ConstantInt(ty, 0)
    elif op in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
        if crhs is not None and crhs.is_zero:
            return lhs
        if clhs is not None and clhs.is_zero:
            return ConstantInt(ty, 0)
    return None


def _simplify_icmp(inst: ICmpInst) -> Optional[Value]:
    """Simplify comparisons, in particular the front end's bool round trips."""
    from ..ir import I1

    lhs, rhs = inst.lhs, inst.rhs
    crhs = _constant(rhs)
    predicate = inst.predicate

    if lhs is rhs:
        always_true = predicate in (ICmpPredicate.EQ, ICmpPredicate.ULE,
                                    ICmpPredicate.UGE, ICmpPredicate.SLE,
                                    ICmpPredicate.SGE)
        return ConstantInt(I1, 1 if always_true else 0)

    # (zext i1 %b to iN) != 0   ->  %b
    # (zext i1 %b to iN) == 0   ->  xor %b, true
    if crhs is not None and crhs.is_zero and isinstance(lhs, CastInst) and \
            lhs.opcode is Opcode.ZEXT and lhs.value.type == I1:
        if predicate is ICmpPredicate.NE:
            return lhs.value
        if predicate is ICmpPredicate.EQ:
            return _invert_bool(inst, lhs.value)

    # (zext i1 %b to iN) == 1 -> %b ; != 1 -> not %b
    if crhs is not None and crhs.is_one and isinstance(lhs, CastInst) and \
            lhs.opcode is Opcode.ZEXT and lhs.value.type == I1:
        if predicate is ICmpPredicate.EQ:
            return lhs.value
        if predicate is ICmpPredicate.NE:
            return _invert_bool(inst, lhs.value)

    # Unsigned comparisons against 0 have trivial answers.
    if crhs is not None and crhs.is_zero:
        if predicate is ICmpPredicate.ULT:
            return ConstantInt(I1, 0)
        if predicate is ICmpPredicate.UGE:
            return ConstantInt(I1, 1)
        if predicate is ICmpPredicate.UGT:
            # x >u 0  <=>  x != 0 : canonicalize to the equality form.
            replacement = ICmpInst(ICmpPredicate.NE, lhs, rhs)
            return _insert_before(inst, replacement)
    return None


def _invert_bool(anchor: Instruction, value: Value) -> Value:
    from ..ir import I1
    inverted = BinaryInst(Opcode.XOR, value, ConstantInt(I1, 1))
    return _insert_before(anchor, inverted)


def _insert_before(anchor: Instruction, new_inst: Instruction) -> Instruction:
    assert anchor.parent is not None
    if not new_inst.name and not new_inst.type.is_void:
        function = anchor.parent.parent
        if function is not None:
            new_inst.name = function.next_name("ic")
    anchor.parent.insert_before(anchor, new_inst)
    return new_inst


def _simplify_cast(inst: CastInst) -> Optional[Value]:
    value = inst.value
    # Cast of a cast: zext(zext x) -> zext x ; trunc(zext x) back to the
    # original width -> x.
    if isinstance(value, CastInst):
        inner = value.value
        if inst.opcode is Opcode.TRUNC and value.opcode in (Opcode.ZEXT,
                                                            Opcode.SEXT):
            if inner.type == inst.type:
                return inner
            inner_ty = inner.type
            if isinstance(inner_ty, IntType) and isinstance(inst.type, IntType) \
                    and inner_ty.width > inst.type.width:
                replacement = CastInst(Opcode.TRUNC, inner, inst.type)
                return _insert_before(inst, replacement)
        if inst.opcode is Opcode.ZEXT and value.opcode is Opcode.ZEXT:
            replacement = CastInst(Opcode.ZEXT, inner, inst.type)
            return _insert_before(inst, replacement)
        if inst.opcode is Opcode.SEXT and value.opcode is Opcode.SEXT:
            replacement = CastInst(Opcode.SEXT, inner, inst.type)
            return _insert_before(inst, replacement)
    if inst.type == value.type and inst.opcode in (Opcode.ZEXT, Opcode.SEXT,
                                                   Opcode.TRUNC,
                                                   Opcode.BITCAST):
        return value
    return None


def _simplify_select(inst: SelectInst) -> Optional[Value]:
    from ..ir import I1

    if inst.true_value is inst.false_value:
        return inst.true_value
    # select c, 1, 0 over i1 is just c; select c, 0, 1 is not c.
    tv, fv = _constant(inst.true_value), _constant(inst.false_value)
    if inst.type == I1 and tv is not None and fv is not None:
        if tv.is_one and fv.is_zero:
            return inst.condition
        if tv.is_zero and fv.is_one:
            return _invert_bool(inst, inst.condition)
    return None


class InstCombine(Pass):
    """Peephole algebraic simplification to a local fixpoint."""

    name = "instcombine"

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        changed = False
        progress = True
        while progress:
            progress = False
            for block in function.blocks:
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue
                    replacement = self._simplify(inst)
                    if replacement is not None and replacement is not inst:
                        inst.replace_all_uses_with(replacement)
                        inst.erase_from_parent()
                        self.stats.instructions_combined += 1
                        progress = True
                        changed = True
        if not changed:
            return PreservedAnalyses.unchanged()
        # Peepholes rewrite value computations only, never branch targets.
        return PreservedAnalyses.cfg_preserving()

    def _simplify(self, inst: Instruction) -> Optional[Value]:
        folded = fold_instruction(inst)
        if folded is not None:
            return folded
        if isinstance(inst, BinaryInst):
            return _simplify_binary(inst)
        if isinstance(inst, ICmpInst):
            return _simplify_icmp(inst)
        if isinstance(inst, CastInst):
            return _simplify_cast(inst)
        if isinstance(inst, SelectInst):
            return _simplify_select(inst)
        return None


from .registry import register_pass

register_pass(
    "instcombine", InstCombine,
    description="peephole-combine instruction patterns")
