"""repro.passes — the optimization passes and pass manager."""

from ..analysis import AnalysisManager, PreservedAnalyses
from .pass_manager import Pass, PassManager, PassRunRecord, TransformStats
from .registry import (
    PassInfo, PassParam, PassSpec, PipelineSpec, PipelineSyntaxError,
    build_pass, build_passes, format_pass, format_pipeline, make_pass_spec,
    parse_pass, parse_pipeline, pass_info, pass_names, register_pass,
    registered_passes,
)
from .mem2reg import PromoteMemoryToRegisters
from .sroa import ScalarReplacementOfAggregates
from .constprop import ConstantPropagation, fold_instruction
from .sccp import (
    BOTTOM_CELL, LatticeCell, SparseConditionalConstantPropagation, TOP_CELL,
    const_cell, meet,
)
from .instcombine import InstCombine
from .algebra import AlgebraicSimplify
from .dce import DeadCodeElimination, GlobalDCE
from .gvn import GlobalValueNumbering
from .load_elim import LoadElimination
from .simplifycfg import SimplifyCFG
from .inline import InlineParams, Inliner, inline_call
from .ifconvert import IfConversion, IfConversionParams
from .jump_threading import JumpThreading
from .licm import LoopInvariantCodeMotion
from .loop_unswitch import LoopUnswitching, UnswitchParams
from .loop_unroll import LoopUnrolling, UnrollParams
from .annotate import AnnotateForVerification
from .checks import CHECK_FAIL_FUNCTION, InsertRuntimeChecks, get_or_create_check_fail
from .loop_utils import (
    clone_loop, ensure_preheader, insert_lcssa_phis, single_exit_block,
)

__all__ = [
    "AnalysisManager", "PreservedAnalyses",
    "Pass", "PassManager", "PassRunRecord", "TransformStats",
    "PassInfo", "PassParam", "PassSpec", "PipelineSpec",
    "PipelineSyntaxError",
    "build_pass", "build_passes", "format_pass", "format_pipeline",
    "make_pass_spec", "parse_pass", "parse_pipeline", "pass_info",
    "pass_names", "register_pass", "registered_passes",
    "PromoteMemoryToRegisters",
    "ScalarReplacementOfAggregates",
    "ConstantPropagation", "fold_instruction",
    "SparseConditionalConstantPropagation",
    "LatticeCell", "TOP_CELL", "BOTTOM_CELL", "const_cell", "meet",
    "InstCombine",
    "AlgebraicSimplify",
    "DeadCodeElimination", "GlobalDCE",
    "GlobalValueNumbering",
    "LoadElimination",
    "SimplifyCFG",
    "InlineParams", "Inliner", "inline_call",
    "IfConversion", "IfConversionParams",
    "JumpThreading",
    "LoopInvariantCodeMotion",
    "LoopUnswitching", "UnswitchParams",
    "LoopUnrolling", "UnrollParams",
    "AnnotateForVerification",
    "CHECK_FAIL_FUNCTION", "InsertRuntimeChecks", "get_or_create_check_fail",
    "clone_loop", "ensure_preheader", "insert_lcssa_phis", "single_exit_block",
]
