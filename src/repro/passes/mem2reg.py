"""Promote memory to registers (the classic SSA-construction pass).

The paper's Table 2 lists "Remove/split memory accesses" as beneficial for
both verification and execution: every alloca that is only loaded and stored
as a whole scalar is rewritten into SSA values with phi nodes, which removes
the loads/stores that a verification tool would otherwise have to reason
about through its memory model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis import AnalysisManager, DominatorTree, PreservedAnalyses
from ..ir import (
    AllocaInst, BasicBlock, Function, Instruction, IntType, LoadInst,
    PhiInst, PointerType, StoreInst, UndefValue, Value,
)
from .pass_manager import Pass


def _is_promotable(alloca: AllocaInst) -> bool:
    """An alloca is promotable when it holds a first-class scalar and every
    use is a direct whole-value load or store (never address-taken)."""
    ty = alloca.allocated_type
    if not (ty.is_integer or ty.is_pointer):
        return False
    for use in alloca.uses:
        user = use.user
        if isinstance(user, LoadInst) and user.pointer is alloca:
            continue
        if isinstance(user, StoreInst) and user.pointer is alloca and \
                user.value is not alloca:
            continue
        return False
    return True


class PromoteMemoryToRegisters(Pass):
    """mem2reg: rewrite promotable allocas into SSA form."""

    name = "mem2reg"

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        allocas = [inst for inst in function.instructions()
                   if isinstance(inst, AllocaInst) and _is_promotable(inst)]
        if not allocas:
            return PreservedAnalyses.unchanged()
        domtree = analyses.dominator_tree(function)
        frontier = domtree.dominance_frontier()
        reachable = analyses.cfg(function).reachable_ids()

        phi_owner: Dict[int, AllocaInst] = {}
        for alloca in allocas:
            self._insert_phis(alloca, function, frontier, reachable, phi_owner)
        self._rename(function, domtree, allocas, phi_owner)

        for alloca in allocas:
            for use in list(alloca.uses):
                user = use.user
                if isinstance(user, (LoadInst, StoreInst)):
                    user.erase_from_parent()
            alloca.erase_from_parent()
            self.stats.allocas_promoted += 1
        # Promotion rewrites instructions but never blocks or branch
        # targets, so every CFG-derived analysis survives.
        return PreservedAnalyses.cfg_preserving()

    # ------------------------------------------------------------ phi nodes
    def _insert_phis(self, alloca: AllocaInst, function: Function,
                     frontier: Dict[BasicBlock, Set[BasicBlock]],
                     reachable: Set[int],
                     phi_owner: Dict[int, AllocaInst]) -> None:
        defining_blocks: List[BasicBlock] = []
        for use in alloca.uses:
            user = use.user
            if isinstance(user, StoreInst) and user.parent is not None and \
                    id(user.parent) in reachable:
                if user.parent not in defining_blocks:
                    defining_blocks.append(user.parent)
        has_phi: Set[int] = set()
        worklist = list(defining_blocks)
        while worklist:
            block = worklist.pop()
            for df_block in frontier.get(block, ()):  # type: ignore[arg-type]
                if id(df_block) in has_phi:
                    continue
                has_phi.add(id(df_block))
                phi = PhiInst(alloca.allocated_type,
                              function.next_name(f"{alloca.name}.phi"))
                df_block.insert_instruction(0, phi)
                phi_owner[id(phi)] = alloca
                if df_block not in defining_blocks:
                    worklist.append(df_block)

    # ------------------------------------------------------------- renaming
    def _rename(self, function: Function, domtree: DominatorTree,
                allocas: List[AllocaInst],
                phi_owner: Dict[int, AllocaInst]) -> None:
        alloca_set = {id(a): a for a in allocas}
        undef: Dict[int, Value] = {
            id(a): UndefValue(a.allocated_type) for a in allocas}

        def current(stacks: Dict[int, List[Value]], alloca: AllocaInst) -> Value:
            stack = stacks[id(alloca)]
            return stack[-1] if stack else undef[id(alloca)]

        stacks: Dict[int, List[Value]] = {id(a): [] for a in allocas}

        def visit(block: BasicBlock) -> None:
            pushed: List[int] = []
            for inst in list(block.instructions):
                if isinstance(inst, PhiInst) and id(inst) in phi_owner:
                    alloca = phi_owner[id(inst)]
                    stacks[id(alloca)].append(inst)
                    pushed.append(id(alloca))
                elif isinstance(inst, LoadInst) and id(inst.pointer) in alloca_set:
                    alloca = alloca_set[id(inst.pointer)]
                    inst.replace_all_uses_with(current(stacks, alloca))
                elif isinstance(inst, StoreInst) and id(inst.pointer) in alloca_set:
                    alloca = alloca_set[id(inst.pointer)]
                    stacks[id(alloca)].append(inst.value)
                    pushed.append(id(alloca))
            for succ in block.successors():
                for phi in succ.phis():
                    if id(phi) in phi_owner:
                        alloca = phi_owner[id(phi)]
                        phi.add_incoming(current(stacks, alloca), block)
            for child in domtree.children.get(block, []):
                visit(child)
            for key in reversed(pushed):
                stacks[key].pop()

        if function.blocks:
            visit(function.entry_block)


from .registry import register_pass

register_pass(
    "mem2reg", PromoteMemoryToRegisters,
    description="promote stack slots to SSA registers")
