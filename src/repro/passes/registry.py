"""Pass registry and the textual pipeline syntax.

Every optimization pass registers itself here under a short name together
with a description of its tunable parameters.  On top of the registry this
module implements a textual pipeline syntax in the style of LLVM's new pass
manager ``-passes=`` option:

    simplifycfg,mem2reg,inline<threshold=5000,loops>,gvn,ifconvert<spec=64>

* passes are separated by commas,
* a pass may carry ``<...>`` parameters: ``key=value`` for integers and
  name lists, a bare ``flag`` (or ``no-flag``) for booleans,
* :func:`parse_pipeline` turns such a string into a :class:`PipelineSpec`
  and :func:`format_pipeline` renders a spec back to its canonical string;
  the two round-trip (``parse_pipeline(format_pipeline(spec)) == spec``).

The optimization levels in :mod:`repro.pipelines.levels` are plain entries
in a table of such strings — experimenting with a new pipeline shape means
writing a string, not editing library code.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .pass_manager import Pass


class PipelineSyntaxError(ValueError):
    """A pipeline string (or a parameter in it) could not be parsed."""


# --------------------------------------------------------------------------
# Parameter schemas
# --------------------------------------------------------------------------

#: Parameter kinds understood by the parser/formatter.
_INT = "int"
_FLAG = "flag"
_NAMES = "names"


@dataclass(frozen=True)
class PassParam:
    """One textual parameter of a registered pass.

    ``key`` is the name used in pipeline strings, ``field`` the keyword
    argument the pass factory receives, ``kind`` one of ``int``/``flag``/
    ``names``, and ``default`` the value used when the parameter is absent
    (defaults are never emitted by the formatter).
    """

    key: str
    field: str
    kind: str
    default: object


def _dataclass_default(params_type: type, field_name: str) -> object:
    for f in dataclasses.fields(params_type):
        if f.name != field_name:
            continue
        if f.default is not dataclasses.MISSING:
            return f.default
        if f.default_factory is not dataclasses.MISSING:  # type: ignore
            return f.default_factory()  # type: ignore[misc]
    raise ValueError(f"{params_type.__name__} has no field '{field_name}'")


def int_param(key: str, field: str, params_type: type) -> PassParam:
    """An integer parameter whose default comes from ``params_type``."""
    return PassParam(key, field, _INT, _dataclass_default(params_type, field))


def flag_param(key: str, field: str, params_type: type) -> PassParam:
    """A boolean parameter whose default comes from ``params_type``."""
    return PassParam(key, field, _FLAG, _dataclass_default(params_type, field))


def names_param(key: str, field: str,
                default: Sequence[str] = ()) -> PassParam:
    """A ``key=a:b:c`` name-list parameter (stored as a sorted tuple)."""
    return PassParam(key, field, _NAMES, tuple(sorted(default)))


@dataclass(frozen=True)
class PassInfo:
    """Registry entry for one pass."""

    name: str
    factory: Callable[..., Pass]
    params: Tuple[PassParam, ...] = ()
    description: str = ""

    def param(self, key: str) -> PassParam:
        for param in self.params:
            if param.key == key:
                return param
        known = ", ".join(p.key for p in self.params) or "none"
        raise PipelineSyntaxError(
            f"pass '{self.name}' has no parameter '{key}' "
            f"(known parameters: {known})")


_REGISTRY: Dict[str, PassInfo] = {}


def register_pass(name: str, factory: Callable[..., Pass], *,
                  params: Sequence[PassParam] = (),
                  description: str = "") -> PassInfo:
    """Register ``factory`` under ``name``.  Called once at import time by
    every pass module; re-registration under the same name is rejected."""
    if name in _REGISTRY:
        raise ValueError(f"pass '{name}' is already registered")
    info = PassInfo(name=name, factory=factory, params=tuple(params),
                    description=description)
    _REGISTRY[name] = info
    return info


def pass_info(name: str) -> PassInfo:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PipelineSyntaxError(
            f"unknown pass '{name}'; known passes: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def registered_passes() -> List[PassInfo]:
    """All registered passes, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def pass_names() -> List[str]:
    return sorted(_REGISTRY)


# --------------------------------------------------------------------------
# Pipeline specs
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class PassSpec:
    """One pass invocation: a registered name plus explicit parameters.

    ``params`` is stored as a tuple of ``(key, value)`` pairs in the schema's
    declared order and never contains values equal to the schema default —
    that normal form is what makes spec equality and the parse/format
    round-trip exact.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    def param(self, key: str, default: object = None) -> object:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def with_param(self, key: str, value: object) -> "PassSpec":
        """A copy of this spec with ``key`` set to ``value`` (normalized:
        setting a parameter back to its default removes it)."""
        info = pass_info(self.name)
        schema = info.param(key)
        value = _normalize_value(info, schema, value)
        given = {k: v for k, v in self.params}
        if value == schema.default:
            given.pop(key, None)
        else:
            given[key] = value
        return PassSpec(self.name, _ordered_params(info, given))

    def __str__(self) -> str:
        return format_pass(self)


@dataclass(frozen=True)
class PipelineSpec:
    """An ordered sequence of :class:`PassSpec`, i.e. one whole pipeline."""

    passes: Tuple[PassSpec, ...] = ()

    def __iter__(self):
        return iter(self.passes)

    def __len__(self) -> int:
        return len(self.passes)

    def pass_names(self) -> List[str]:
        return [p.name for p in self.passes]

    def map_passes(self, fn: Callable[[PassSpec], Optional[PassSpec]]
                   ) -> "PipelineSpec":
        """Rebuild the pipeline by mapping ``fn`` over every pass; returning
        ``None`` drops the pass.  This is how spec transforms (entry points,
        runtime-check ablation) are written."""
        rebuilt = []
        for spec in self.passes:
            mapped = fn(spec)
            if mapped is not None:
                rebuilt.append(mapped)
        return PipelineSpec(tuple(rebuilt))

    def __str__(self) -> str:
        return format_pipeline(self)


def _normalize_value(info: PassInfo, param: PassParam,
                     value: object) -> object:
    """Coerce ``value`` into the canonical stored form for ``param``."""
    if param.kind == _INT:
        if isinstance(value, bool) or not isinstance(value, int):
            raise PipelineSyntaxError(
                f"pass '{info.name}': parameter '{param.key}' expects an "
                f"integer, got {value!r}")
        return value
    if param.kind == _FLAG:
        if not isinstance(value, bool):
            raise PipelineSyntaxError(
                f"pass '{info.name}': parameter '{param.key}' is a flag "
                f"(use '{param.key}' or 'no-{param.key}'), got {value!r}")
        return value
    assert param.kind == _NAMES
    if isinstance(value, str):
        value = value.split(":")
    try:
        names = tuple(sorted(str(n) for n in value))  # type: ignore[union-attr]
    except TypeError:
        raise PipelineSyntaxError(
            f"pass '{info.name}': parameter '{param.key}' expects a "
            f"name list, got {value!r}") from None
    if not all(names) or not names:
        raise PipelineSyntaxError(
            f"pass '{info.name}': parameter '{param.key}' needs at least "
            f"one non-empty name")
    return names


def _ordered_params(info: PassInfo, given: Dict[str, object]
                    ) -> Tuple[Tuple[str, object], ...]:
    """Order ``given`` in schema order (the canonical storage order)."""
    return tuple((p.key, given[p.key]) for p in info.params if p.key in given)


def make_pass_spec(name: str, **params: object) -> PassSpec:
    """Build a normalized :class:`PassSpec` programmatically.  Parameter
    names use the textual keys with ``-`` spelled as ``_`` for keyword
    friendliness (``safe_loads=False`` for ``safe-loads``)."""
    info = pass_info(name)
    given: Dict[str, object] = {}
    for key, value in params.items():
        key = key.replace("_", "-")
        param = info.param(key)
        value = _normalize_value(info, param, value)
        if value != param.default:
            given[key] = value
    return PassSpec(name, _ordered_params(info, given))


# --------------------------------------------------------------------------
# Parsing
# --------------------------------------------------------------------------

def _split_top_level(text: str, separator: str = ",") -> List[str]:
    """Split on ``separator`` outside any ``<...>`` nesting."""
    items: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
            if depth < 0:
                raise PipelineSyntaxError(
                    f"unbalanced '>' in pipeline {text!r}")
        if ch == separator and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise PipelineSyntaxError(f"unbalanced '<' in pipeline {text!r}")
    items.append("".join(current))
    return items


def parse_pass(text: str) -> PassSpec:
    """Parse one ``name`` or ``name<params>`` item."""
    text = text.strip()
    if not text:
        raise PipelineSyntaxError("empty pass entry in pipeline")
    if "<" in text:
        if not text.endswith(">"):
            raise PipelineSyntaxError(
                f"malformed pass entry {text!r}: parameters must be "
                f"enclosed in '<...>'")
        name, _, param_text = text[:-1].partition("<")
        name = name.strip()
        info = pass_info(name)
        given: Dict[str, object] = {}
        for item in param_text.split(","):
            item = item.strip()
            if not item:
                raise PipelineSyntaxError(
                    f"pass '{name}': empty parameter in <{param_text}>")
            key, eq, raw = item.partition("=")
            key = key.strip()
            if eq:
                param = info.param(key)
                value = _parse_value(info, param, raw.strip())
            else:
                negated = key.startswith("no-")
                flag_key = key[3:] if negated else key
                param = info.param(flag_key)
                if param.kind != _FLAG:
                    raise PipelineSyntaxError(
                        f"pass '{name}': parameter '{param.key}' needs a "
                        f"value ('{param.key}=...')")
                key, value = flag_key, not negated
            if key in given:
                raise PipelineSyntaxError(
                    f"pass '{name}': duplicate parameter '{key}'")
            given[key] = value
        given = {k: v for k, v in given.items()
                 if v != info.param(k).default}
        return PassSpec(name, _ordered_params(info, given))
    return PassSpec(pass_info(text).name)


def _parse_value(info: PassInfo, param: PassParam, raw: str) -> object:
    if param.kind == _INT:
        try:
            return int(raw)
        except ValueError:
            raise PipelineSyntaxError(
                f"pass '{info.name}': parameter '{param.key}' expects an "
                f"integer, got '{raw}'") from None
    if param.kind == _NAMES:
        return _normalize_value(info, param, raw)
    assert param.kind == _FLAG
    if raw in ("true", "on", "1"):
        return True
    if raw in ("false", "off", "0"):
        return False
    raise PipelineSyntaxError(
        f"pass '{info.name}': parameter '{param.key}' is a flag; use "
        f"'{param.key}', 'no-{param.key}', or '{param.key}=true/false'")


def parse_pipeline(text: str) -> PipelineSpec:
    """Parse a comma-separated pipeline string into a :class:`PipelineSpec`.

    Raises :class:`PipelineSyntaxError` naming the offending pass or
    parameter on malformed input.
    """
    text = text.strip()
    if not text:
        return PipelineSpec()
    return PipelineSpec(tuple(parse_pass(item)
                              for item in _split_top_level(text)))


# --------------------------------------------------------------------------
# Formatting
# --------------------------------------------------------------------------

def format_pass(spec: PassSpec) -> str:
    """Render one pass spec in canonical form (defaults omitted, parameters
    in schema order, ``True`` flags bare and ``False`` flags ``no-``)."""
    info = pass_info(spec.name)
    rendered: List[str] = []
    for key, value in spec.params:
        param = info.param(key)
        if value == param.default:
            continue
        if param.kind == _FLAG:
            rendered.append(key if value else f"no-{key}")
        elif param.kind == _NAMES:
            rendered.append(f"{key}={':'.join(value)}")  # type: ignore
        else:
            rendered.append(f"{key}={value}")
    if rendered:
        return f"{spec.name}<{','.join(rendered)}>"
    return spec.name


def format_pipeline(spec: PipelineSpec) -> str:
    """Render a pipeline spec as its canonical textual form."""
    return ",".join(format_pass(p) for p in spec.passes)


# --------------------------------------------------------------------------
# Building
# --------------------------------------------------------------------------

def build_pass(spec: PassSpec) -> Pass:
    """Instantiate the registered pass for ``spec``."""
    info = pass_info(spec.name)
    kwargs = {}
    for key, value in spec.params:
        param = info.param(key)
        value = _normalize_value(info, param, value)
        if param.kind == _NAMES:
            value = set(value)  # type: ignore[arg-type]
        kwargs[param.field] = value
    return info.factory(**kwargs)


def build_passes(spec: PipelineSpec) -> List[Pass]:
    """Instantiate every pass in ``spec``, in order."""
    return [build_pass(p) for p in spec.passes]
