"""Dead code elimination.

Removes instructions whose results are unused and that have no side effects,
plus stores to allocas that are never read ("dead store to dead object").
Together with constant propagation this is what produces the instruction
count reduction the paper attributes to ``-O2`` in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from ..analysis import (
    FUNCTION_ANALYSES, AnalysisManager, PreservedAnalyses,
)
from ..ir import (
    AllocaInst, CallInst, ConstantInt, Function, GEPInst, Instruction,
    LoadInst, Module, Opcode, StoreInst,
)
from .pass_manager import Pass

_DIVISION_OPCODES = frozenset(
    (Opcode.SDIV, Opcode.UDIV, Opcode.SREM, Opcode.UREM))


@dataclass
class DCEParams:
    """Knobs of :class:`DeadCodeElimination`.

    ``unsafe_traps`` re-opens a fuzzer-found miscompile — deleting unused
    divisions whose divisor may be zero, silently dropping the trap.  It
    exists ONLY so the translation-validation negative tests can plant a
    known-bad module and assert relcheck catches it; never enable it in a
    real pipeline."""

    unsafe_traps: bool = False


def _is_trivially_dead(inst: Instruction, unsafe_traps: bool = False) -> bool:
    if inst.num_uses > 0:
        return False
    if inst.is_terminator:
        return False
    if isinstance(inst, StoreInst):
        return False
    if isinstance(inst, CallInst):
        return False  # calls may have side effects; the IPO passes handle them
    if inst.opcode in _DIVISION_OPCODES and not unsafe_traps:
        # A zero divisor is an observable trap at every level (the
        # interpreter raises DIVISION_BY_ZERO and symex reports it as a
        # bug), so an unused division is only dead when the divisor is a
        # provably nonzero constant.  Every other pass (lowering's
        # short-circuit speculation, ifconvert, LICM) already refuses to
        # move div/rem for the same reason; DCE deleting them silently
        # dropped the trap from -O1 and up.
        divisor = inst.operands[1]
        if not (isinstance(divisor, ConstantInt) and divisor.value != 0):
            return False
    return True


class DeadCodeElimination(Pass):
    """Classic use-count based DCE plus dead-alloca removal."""

    name = "dce"

    def __init__(self, params: Optional[DCEParams] = None) -> None:
        super().__init__()
        self.params = params or DCEParams()

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        changed = False
        progress = True
        unsafe_traps = self.params.unsafe_traps
        while progress:
            progress = False
            for block in function.blocks:
                for inst in reversed(list(block.instructions)):
                    if _is_trivially_dead(inst, unsafe_traps):
                        inst.erase_from_parent()
                        self.stats.instructions_removed += 1
                        progress = True
                        changed = True
            progress |= self._remove_dead_allocas(function)
        if not changed:
            return PreservedAnalyses.unchanged()
        # Only non-terminator instructions are removed; CFG shape survives.
        return PreservedAnalyses.cfg_preserving()

    def _remove_dead_allocas(self, function: Function) -> bool:
        """Remove allocas that are only ever written, never read."""
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, AllocaInst):
                    continue
                users = [use.user for use in inst.uses]
                only_stores = all(
                    isinstance(u, StoreInst) and u.pointer is inst and
                    u.value is not inst
                    for u in users)
                if users and not only_stores:
                    continue
                for user in list(users):
                    if isinstance(user, Instruction):
                        user.erase_from_parent()
                        self.stats.instructions_removed += 1
                inst.erase_from_parent()
                self.stats.instructions_removed += 1
                changed = True
        return changed


class GlobalDCE(Pass):
    """Remove functions that can no longer be reached from the module roots.

    After aggressive inlining (``-OVERIFY``), most library helpers have no
    remaining callers; deleting them is what shrinks the "# instructions"
    row of Table 1 and keeps the symbolic executor from wading through dead
    definitions.
    """

    name = "globaldce"

    def __init__(self, roots: Set[str] | None = None) -> None:
        super().__init__()
        #: Functions that must never be removed (program entry points).
        self.roots = roots or {"main"}

    def run_on_module(self, module: Module,
                      analyses: AnalysisManager = None) -> PreservedAnalyses:
        if analyses is None:
            analyses = AnalysisManager()
        roots = {name for name in self.roots if name in module.functions}
        if not roots:
            # Without a known entry point it is not safe to delete anything.
            return PreservedAnalyses.unchanged()
        graph = analyses.call_graph(module)
        live = graph.reachable_from(sorted(roots))
        changed = False
        for function in list(module.functions.values()):
            if function.name in live or function.name in self.roots:
                continue
            if function.num_uses > 0:
                continue
            for block in list(function.blocks):
                for inst in list(block.instructions):
                    inst.drop_all_references()
                block.instructions = []
            function.blocks = []
            module.remove_function(function)
            analyses.invalidate_function(function)
            self.stats.functions_removed += 1
            changed = True
        if not changed:
            return PreservedAnalyses.unchanged()
        # Removing whole functions does not perturb the bodies of the
        # survivors, so their analyses stay valid; the call graph does not.
        return PreservedAnalyses.preserving(*FUNCTION_ANALYSES)


from .registry import flag_param, names_param, register_pass

register_pass(
    "dce", lambda **params: DeadCodeElimination(DCEParams(**params)),
    params=[flag_param("unsafe-traps", "unsafe_traps", DCEParams)],
    description="delete instructions whose results are unused "
                "(unsafe-traps re-opens a known miscompile, for the "
                "relcheck negative tests only)")
register_pass(
    "globaldce", lambda roots=None: GlobalDCE(roots),
    params=[names_param("roots", "roots", ("main",))],
    description="delete functions unreachable from the root set")
