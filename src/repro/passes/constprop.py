"""Constant propagation and folding.

Implements the "Constant propagation/folding, arithmetic simplifications"
row of the paper's Table 2 — marked as beneficial for *both* execution and
verification.  The pass iteratively replaces instructions whose operands are
all constants with the computed constant, which in turn may make branch
conditions constant; SimplifyCFG then deletes the dead arms.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisManager, PreservedAnalyses
from ..ir import (
    BinaryInst, CastInst, ConstantInt, Function, ICmpInst, Instruction,
    IntType, Opcode, PhiInst, SelectInst, Value, eval_binary, eval_icmp,
)
from .pass_manager import Pass


def fold_instruction(inst: Instruction) -> Optional[Value]:
    """Return a constant replacement for ``inst`` if it can be folded."""
    if isinstance(inst, BinaryInst):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            ty = inst.type
            assert isinstance(ty, IntType)
            value = eval_binary(inst.opcode, ty, lhs.value, rhs.value)
            if value is not None:
                return ConstantInt(ty, value)
        return None
    if isinstance(inst, ICmpInst):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            lhs_ty = lhs.type
            assert isinstance(lhs_ty, IntType)
            result = eval_icmp(inst.predicate, lhs_ty, lhs.value, rhs.value)
            from ..ir import I1
            return ConstantInt(I1, 1 if result else 0)
        return None
    if isinstance(inst, SelectInst):
        if isinstance(inst.condition, ConstantInt):
            return inst.true_value if inst.condition.value else inst.false_value
        if inst.true_value is inst.false_value:
            return inst.true_value
        return None
    if isinstance(inst, CastInst):
        value = inst.value
        if isinstance(value, ConstantInt) and isinstance(inst.type, IntType):
            if inst.opcode is Opcode.ZEXT or inst.opcode is Opcode.TRUNC:
                return ConstantInt(inst.type, value.value)
            if inst.opcode is Opcode.SEXT:
                return ConstantInt(inst.type, value.signed_value)
        return None
    if isinstance(inst, PhiInst):
        # A phi whose incoming values are all the same constant is that
        # constant (self-references are ignored, as in LLVM).
        distinct: Optional[Value] = None
        for value, _ in inst.incoming():
            if value is inst:
                continue
            if isinstance(value, ConstantInt):
                if distinct is None:
                    distinct = value
                elif isinstance(distinct, ConstantInt) and \
                        distinct.value == value.value and \
                        distinct.type == value.type:
                    continue
                else:
                    return None
            else:
                return None
        return distinct
    return None


class ConstantPropagation(Pass):
    """Iterative constant folding over every function."""

    name = "constprop"

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        changed = False
        progress = True
        while progress:
            progress = False
            for block in function.blocks:
                for inst in list(block.instructions):
                    folded = fold_instruction(inst)
                    if folded is not None and folded is not inst:
                        inst.replace_all_uses_with(folded)
                        inst.erase_from_parent()
                        self.stats.instructions_folded += 1
                        progress = True
                        changed = True
        if not changed:
            return PreservedAnalyses.unchanged()
        # Folding never rewrites terminators (SimplifyCFG folds constant
        # branches), so the CFG-derived analyses stay valid.
        return PreservedAnalyses.cfg_preserving()


from .registry import register_pass

register_pass(
    "constprop", ConstantPropagation,
    description="fold instructions with constant operands")
