"""Cross-block redundant load elimination over the available-memory analysis.

GVN already forwards stores to loads *within* one basic block.  This pass
extends the same rewrite across block boundaries using
:class:`repro.analysis.AvailableMemory`: a load whose (pointer, size)
location is proven to hold a known SSA value on every path into its block
is replaced by that value, and the load disappears.

The verification payoff is indirect but large: a load is opaque to every
scalar pass, so a branch condition computed from a reloaded flag can never
fold.  Once the load is replaced by the stored value, SCCP/instcombine see
straight data flow and the branch folds or converts — e.g. the
``new_word`` handshake in the paper's word-count kernel stops being a
memory round trip per iteration and becomes a φ the other passes consume.

The intersection meet of the analysis guarantees the replacing value's
definition lies on every path to the load, hence dominates it; no new
dominance checking is needed here.
"""

from __future__ import annotations

from ..analysis import AnalysisManager, PreservedAnalyses
from ..ir import Function, LoadInst, PointerType
from .pass_manager import Pass


def _load_size(load: LoadInst) -> int:
    pointer_type = load.pointer.type
    if isinstance(pointer_type, PointerType) and \
            not pointer_type.pointee.is_void:
        return pointer_type.pointee.size_in_bytes()
    return 8


class LoadElimination(Pass):
    """Replace loads whose location holds a known value on every path."""

    name = "load-elim"

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration or not function.blocks:
            return PreservedAnalyses.unchanged()
        memory = analyses.available_memory(function)
        changed = False
        #: id(erased load) -> the value it was replaced with.  Facts were
        #: computed over the pre-pass IR, so a fact may name a load this
        #: very run already eliminated; chase it to the surviving value.
        replaced = {}

        def resolve(value):
            while id(value) in replaced:
                value = replaced[id(value)]
            return value

        for block in function.blocks:
            facts = memory.entry_facts(block)
            for inst in list(block.instructions):
                if isinstance(inst, LoadInst):
                    fact = facts.get(id(inst.pointer))
                    if fact is not None and fact.size == _load_size(inst) \
                            and fact.value is not inst \
                            and fact.value.type == inst.type:
                        value = resolve(fact.value)
                        inst.replace_all_uses_with(value)
                        inst.erase_from_parent()
                        replaced[id(inst)] = value
                        self.stats.loads_eliminated += 1
                        changed = True
                        continue
                # Keep the facts current past this instruction, reusing the
                # analysis's own transfer rules so kills cannot diverge.
                memory.transfer(facts, inst)
        if not changed:
            return PreservedAnalyses.unchanged()
        # Loads are never terminators: values change, CFG shape does not.
        return PreservedAnalyses.cfg_preserving()


from .registry import register_pass

register_pass(
    "load-elim", LoadElimination,
    description="remove loads whose value is available on every path")
