"""Program annotations for verification tools.

"Compilers also do not keep information computed during compilation, such as
alias information, variable ranges, loop invariants, or trip counts.  This
information however is priceless for verification tools, and could be easily
preserved in the form of program metadata." (§3, Program annotations.)

This pass records, as instruction/function metadata:

* ``range`` — the interval computed by the value-range analysis,
* ``trip_count`` — exact trip counts of counted loops (on the header's
  terminator),
* ``alias.distinct`` — for loads/stores whose base object is an identified
  alloca or global, the name of that object (two accesses with different
  base names cannot alias),
* ``loop.depth`` — the loop nesting depth of each memory access.

The symbolic executor consults ``range`` metadata to avoid solver calls for
branches whose outcome the interval already decides, which is one of the
mechanisms by which -OVERIFY speeds verification up without changing the
verification tool itself.
"""

from __future__ import annotations

from ..analysis import (
    AnalysisManager, PreservedAnalyses, compute_trip_count, full_range,
    underlying_object,
)
from ..ir import (
    AllocaInst, Function, GlobalVariable, Instruction, IntType, LoadInst,
    StoreInst,
)
from .pass_manager import Pass


class AnnotateForVerification(Pass):
    """Attach analysis results as metadata for downstream verification tools."""

    name = "annotate"

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        changed = False
        ranges = analyses.value_ranges(function)
        loop_info = analyses.loop_info(function)

        for block in function.blocks:
            depth = loop_info.loop_depth(block)
            for inst in block.instructions:
                if isinstance(inst.type, IntType):
                    interval = ranges.range_of(inst)
                    if interval is not None and \
                            interval != full_range(inst.type):
                        inst.metadata["range"] = (interval.low, interval.high)
                        self.stats.annotations_added += 1
                        changed = True
                if isinstance(inst, (LoadInst, StoreInst)):
                    pointer = inst.pointer
                    base = underlying_object(pointer).base
                    if isinstance(base, (AllocaInst, GlobalVariable)):
                        inst.metadata["alias.distinct"] = base.name
                        self.stats.annotations_added += 1
                        changed = True
                    if depth:
                        inst.metadata["loop.depth"] = depth

        for loop in loop_info.loops:
            trip = compute_trip_count(loop)
            if trip is not None:
                term = loop.header.terminator
                if term is not None:
                    term.metadata["trip_count"] = trip.count
                    self.stats.annotations_added += 1
                    changed = True
        function.metadata["annotated_for_verification"] = True
        # Annotation writes metadata only — the IR structure and values are
        # untouched, so every analysis remains valid (and re-running this
        # pass is a pure cache hit).
        return PreservedAnalyses.all(changed=changed)


from .registry import register_pass

register_pass(
    "annotate", AnnotateForVerification,
    description="attach verification metadata (trip counts, value ranges)")
