"""If-conversion: turn conditional control flow into branch-free selects.

This is the transformation the paper's motivating example hinges on
(Listing 2): "Control flow can be further simplified by transforming
conditionally executed side-effect-free statements into speculative
branch-free versions ... When using -OVERIFY, this simplification is pursued
more aggressively, because the cost of a branch is higher."

The pass recognizes two shapes ending at a join block ``D``:

* diamond:  A -> {B, C} -> D       (both arms empty of side effects)
* triangle: A -> {B, D},  B -> D   (one arm)

and rewrites them by speculating the arms' instructions into ``A`` and
replacing the join phis with ``select`` instructions.  The number of
instructions it is willing to speculate is the knob that distinguishes a
CPU-oriented pipeline (``-O3``: branches are cheap, speculate almost
nothing) from -OVERIFY (branches are very expensive, speculate a lot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis import AnalysisManager, PreservedAnalyses, underlying_object
from ..ir import (
    AllocaInst, BasicBlock, BranchInst, CallInst, Function, GlobalVariable,
    Instruction, LoadInst, Opcode, PhiInst, SelectInst, StoreInst, Value,
)
from .pass_manager import Pass


@dataclass
class IfConversionParams:
    """Cost model for if-conversion."""

    #: Maximum number of instructions to speculate per converted branch.
    #: A CPU-oriented compiler keeps this tiny; -OVERIFY raises it a lot.
    max_speculated_instructions: int = 2
    #: Whether loads may be speculated when their base object is a known
    #: stack slot or global (always safe in the IR's memory model).
    speculate_safe_loads: bool = True


def _is_speculatable(inst: Instruction, params: IfConversionParams) -> bool:
    """May ``inst`` be executed unconditionally without changing behaviour?"""
    if isinstance(inst, (StoreInst, CallInst, PhiInst)):
        return False
    if inst.is_terminator:
        return False
    if inst.opcode in (Opcode.SDIV, Opcode.UDIV, Opcode.SREM, Opcode.UREM):
        return False  # may trap on a zero divisor that the branch guarded
    if isinstance(inst, LoadInst):
        if not params.speculate_safe_loads:
            return False
        # A load may only be speculated when its address is provably inside a
        # known object: an alloca or global plus a *constant* offset that
        # fits.  A variable offset (e.g. ``buffer[k]`` guarded by ``k >= 0``)
        # must not be hoisted past its guard — doing so would introduce a
        # memory error that the original program does not have.
        info = underlying_object(inst.pointer)
        if not isinstance(info.base, (AllocaInst, GlobalVariable)):
            return False
        if info.offset is None or info.offset < 0:
            return False
        if isinstance(info.base, AllocaInst):
            object_size = info.base.allocated_type.size_in_bytes()
        else:
            object_size = info.base.value_type.size_in_bytes()
        return info.offset + inst.type.size_in_bytes() <= object_size
    return True


def _speculatable_body(block: BasicBlock,
                       params: IfConversionParams) -> Optional[List[Instruction]]:
    """Return the block's non-terminator instructions if every one of them is
    speculatable and the block ends in an unconditional branch."""
    term = block.terminator
    if not isinstance(term, BranchInst) or term.is_conditional:
        return None
    body = [inst for inst in block.instructions if inst is not term]
    if len(body) > params.max_speculated_instructions:
        return None
    for inst in body:
        if not _is_speculatable(inst, params):
            return None
    return body


class IfConversion(Pass):
    """Convert diamonds and triangles into straight-line code with selects."""

    name = "ifconvert"

    def __init__(self, params: Optional[IfConversionParams] = None) -> None:
        super().__init__()
        self.params = params or IfConversionParams()

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        changed = False
        progress = True
        while progress:
            progress = False
            for block in list(function.blocks):
                if self._try_convert(function, block):
                    self.stats.branches_converted += 1
                    progress = True
                    changed = True
                    break
        # Conversion deletes whole blocks and rewrites branches.
        return PreservedAnalyses.none() if changed \
            else PreservedAnalyses.unchanged()

    # ------------------------------------------------------------ patterns
    def _try_convert(self, function: Function, block: BasicBlock) -> bool:
        term = block.terminator
        if not isinstance(term, BranchInst) or not term.is_conditional:
            return False
        true_block = term.true_target
        false_block = term.false_target
        if true_block is false_block:
            return False

        # Diamond: both arms are side-effect-free single-pred blocks that
        # jump to the same join.
        if self._single_pred(true_block, block) and \
                self._single_pred(false_block, block):
            true_body = _speculatable_body(true_block, self.params)
            false_body = _speculatable_body(false_block, self.params)
            if true_body is not None and false_body is not None:
                true_succ = true_block.successors()
                false_succ = false_block.successors()
                if len(true_succ) == 1 and true_succ == false_succ:
                    join = true_succ[0]
                    if join is not block:
                        self._convert_diamond(block, term, true_block,
                                              false_block, true_body,
                                              false_body, join)
                        return True

        # Triangle with the arm on the true edge: A -> {B, D}, B -> D.
        for arm, other, arm_on_true in ((true_block, false_block, True),
                                        (false_block, true_block, False)):
            if not self._single_pred(arm, block):
                continue
            body = _speculatable_body(arm, self.params)
            if body is None:
                continue
            succ = arm.successors()
            if len(succ) == 1 and succ[0] is other and other is not block:
                self._convert_triangle(block, term, arm, other, body,
                                       arm_on_true)
                return True
        return False

    @staticmethod
    def _single_pred(block: BasicBlock, expected: BasicBlock) -> bool:
        preds = block.predecessors()
        return len(preds) == 1 and preds[0] is expected and not block.phis()

    # ------------------------------------------------------------ rewrites
    def _convert_diamond(self, block: BasicBlock, term: BranchInst,
                         true_block: BasicBlock, false_block: BasicBlock,
                         true_body: List[Instruction],
                         false_body: List[Instruction],
                         join: BasicBlock) -> None:
        condition = term.condition
        function = block.parent
        assert function is not None
        # Hoist both arms into the predecessor, before its terminator.
        for inst in true_body + false_body:
            inst.parent.remove_instruction(inst)  # type: ignore[union-attr]
            block.insert_before(term, inst)
        # Replace the join's phis with selects computed in the predecessor.
        for phi in list(join.phis()):
            true_value = phi.incoming_value_for(true_block)
            false_value = phi.incoming_value_for(false_block)
            if true_value is false_value:
                select: Value = true_value
            else:
                select_inst = SelectInst(condition, true_value, false_value,
                                         function.next_name("spec"))
                block.insert_before(term, select_inst)
                select = select_inst
            phi.remove_incoming(true_block)
            phi.remove_incoming(false_block)
            phi.add_incoming(select, block)
        term.erase_from_parent()
        block.append_instruction(BranchInst(join))
        self._erase_block(true_block)
        self._erase_block(false_block)

    def _convert_triangle(self, block: BasicBlock, term: BranchInst,
                          arm: BasicBlock, join: BasicBlock,
                          body: List[Instruction], arm_on_true: bool) -> None:
        condition = term.condition
        function = block.parent
        assert function is not None
        for inst in body:
            inst.parent.remove_instruction(inst)  # type: ignore[union-attr]
            block.insert_before(term, inst)
        for phi in list(join.phis()):
            arm_value = phi.incoming_value_for(arm)
            direct_value = phi.incoming_value_for(block)
            if arm_value is direct_value:
                select: Value = arm_value
            else:
                if arm_on_true:
                    select_inst = SelectInst(condition, arm_value, direct_value,
                                             function.next_name("spec"))
                else:
                    select_inst = SelectInst(condition, direct_value, arm_value,
                                             function.next_name("spec"))
                block.insert_before(term, select_inst)
                select = select_inst
            phi.remove_incoming(arm)
            phi.remove_incoming(block)
            phi.add_incoming(select, block)
        term.erase_from_parent()
        block.append_instruction(BranchInst(join))
        self._erase_block(arm)

    @staticmethod
    def _erase_block(block: BasicBlock) -> None:
        function = block.parent
        for inst in list(block.instructions):
            inst.drop_all_references()
            inst.parent = None
        block.instructions = []
        if function is not None:
            function.remove_block(block)


from .registry import flag_param, int_param, register_pass

register_pass(
    "ifconvert", lambda **params: IfConversion(IfConversionParams(**params)),
    params=[
        int_param("spec", "max_speculated_instructions", IfConversionParams),
        flag_param("safe-loads", "speculate_safe_loads", IfConversionParams),
    ],
    description="convert diamonds/triangles into branch-free selects")
