"""Sparse conditional constant propagation (Wegman–Zadeck SCCP).

``constprop`` + ``simplifycfg`` fold constants and then delete dead arms,
but each can only consume what the other already produced: a φ-node fed a
constant along every *reachable* edge folds only after the dead edges are
gone, and the dead edges go away only after the φ folds.  SCCP solves both
problems simultaneously by running one optimistic fixpoint over two
worklists — CFG edges and SSA values — in which

* every value starts at ⊤ ("no evidence yet"), is lowered to a constant
  when one is proven, and falls to ⊥ ("overdefined") only when two
  executable paths disagree;
* φ-nodes meet their incoming values **over executable edges only**, so a
  constant arriving from live predecessors is not polluted by dead ones;
* a branch whose condition is proven constant marks only the taken edge
  executable, which in turn keeps the untaken arm's values at ⊤.

After the fixpoint, proven-constant values are materialized, branches with
exactly one executable out-edge are rewritten to unconditional branches
(**deleting the untaken CFG edge**), and never-executable blocks are
removed.  For a path-counting verifier every deleted edge is a halved
subtree of the exploration, which is why the paper lists this family of
transforms as unambiguously beneficial for verification.

The lattice is exposed as :class:`LatticeCell` / :func:`meet` for the
property tests in ``tests/test_new_passes.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..analysis import (
    AnalysisManager, PreservedAnalyses, remove_unreachable_blocks,
)
from ..ir import (
    BasicBlock, BinaryInst, BranchInst, CastInst, ConstantInt, Function,
    ICmpInst, Instruction, IntType, IRBuilder, Opcode, PhiInst, SelectInst,
    SwitchInst, UndefValue, Value, I1, eval_binary, eval_icmp,
)
from .pass_manager import Pass

# ------------------------------------------------------------------ lattice

#: Lattice heights, ordered ⊤ > const > ⊥.
TOP = "top"
CONST = "const"
BOTTOM = "bottom"


@dataclass(frozen=True)
class LatticeCell:
    """One value's position in the SCCP lattice."""

    state: str
    constant: Optional[int] = None  # meaningful only when state == CONST

    @property
    def is_top(self) -> bool:
        return self.state == TOP

    @property
    def is_constant(self) -> bool:
        return self.state == CONST

    @property
    def is_bottom(self) -> bool:
        return self.state == BOTTOM

    #: Height used by the monotonicity property tests: meets only descend.
    @property
    def height(self) -> int:
        return {TOP: 2, CONST: 1, BOTTOM: 0}[self.state]


TOP_CELL = LatticeCell(TOP)
BOTTOM_CELL = LatticeCell(BOTTOM)


def const_cell(value: int) -> LatticeCell:
    return LatticeCell(CONST, value)


def meet(a: LatticeCell, b: LatticeCell) -> LatticeCell:
    """Greatest lower bound: ⊤ ∧ x = x; equal constants stay; disagreeing
    constants (and anything with ⊥) fall to ⊥."""
    if a.is_top:
        return b
    if b.is_top:
        return a
    if a.is_bottom or b.is_bottom:
        return BOTTOM_CELL
    if a.constant == b.constant:
        return a
    return BOTTOM_CELL


# --------------------------------------------------------------------- pass

class SparseConditionalConstantPropagation(Pass):
    """Optimistic constant propagation with CFG-edge pruning."""

    name = "sccp"

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration or not function.blocks:
            return PreservedAnalyses.unchanged()
        solver = _SCCPSolver(function)
        solver.solve()
        changed = self._apply(function, solver)
        if not changed:
            return PreservedAnalyses.unchanged()
        # Materializing constants is value-only, but deleting edges and
        # unreachable blocks restructures the CFG.
        return PreservedAnalyses.none()

    # --------------------------------------------------------- IR rewriting
    def _apply(self, function: Function, solver: "_SCCPSolver") -> bool:
        changed = False
        # 1. Materialize proven constants (executable blocks only; the
        #    never-executed ones are deleted wholesale below).
        for block in function.blocks:
            if not solver.block_executable(block):
                continue
            for inst in list(block.instructions):
                if inst.is_terminator or isinstance(inst, ConstantInt):
                    continue
                cell = solver.value_of(inst)
                if not cell.is_constant or inst.num_uses == 0:
                    continue
                if not isinstance(inst.type, IntType):
                    continue
                inst.replace_all_uses_with(
                    ConstantInt(inst.type, cell.constant))
                inst.erase_from_parent()
                self.stats.instructions_folded += 1
                changed = True

        # 2. Delete proven-untaken edges: rewrite any terminator that has a
        #    non-executable out-edge into an unconditional branch to its
        #    single executable successor.
        for block in list(function.blocks):
            if not solver.block_executable(block):
                continue
            term = block.terminator
            if not isinstance(term, (BranchInst, SwitchInst)):
                continue
            successors = term.successors()
            if len(successors) <= 1:
                continue
            live = [succ for succ in successors
                    if solver.edge_executable(block, succ)]
            live_ids = {id(succ) for succ in live}
            if len(live_ids) != 1:
                continue
            target = live[0]
            dead = [succ for succ in successors if id(succ) != id(target)]
            term.erase_from_parent()
            builder = IRBuilder()
            builder.set_insert_point(block)
            builder.br(target)
            seen: Set[int] = set()
            for succ in dead:
                if id(succ) in seen:
                    continue
                seen.add(id(succ))
                succ.remove_predecessor(block)
                self.stats.branch_edges_deleted += 1
            changed = True

        # 3. Drop the blocks the solver proved never execute (their in-edges
        #    were deleted above, so they are now unreachable).
        removed = remove_unreachable_blocks(function)
        if removed:
            self.stats.blocks_removed += removed
            changed = True
        return changed


class _SCCPSolver:
    """The two-worklist fixpoint over one function."""

    def __init__(self, function: Function) -> None:
        self.function = function
        #: id(value) -> lattice cell (values not present are ⊤).
        self._cells: Dict[int, LatticeCell] = {}
        #: Executable CFG edges as (id(pred), id(succ)).
        self._edges: Set[Tuple[int, int]] = set()
        #: Blocks with at least one executable in-edge (plus the entry).
        self._executable: Set[int] = set()
        self._edge_worklist: List[Tuple[BasicBlock, BasicBlock]] = []
        self._ssa_worklist: List[Instruction] = []

    # ------------------------------------------------------------- queries
    def block_executable(self, block: BasicBlock) -> bool:
        return id(block) in self._executable

    def edge_executable(self, pred: BasicBlock, succ: BasicBlock) -> bool:
        return (id(pred), id(succ)) in self._edges

    def value_of(self, value: Value) -> LatticeCell:
        if isinstance(value, ConstantInt):
            return const_cell(value.value)
        if isinstance(value, UndefValue):
            # Undef could be folded to any constant; ⊥ is the safe choice
            # (both engines read uninitialized slots deterministically, so
            # we must not invent a value they would disagree with).
            return BOTTOM_CELL
        if isinstance(value, Instruction):
            return self._cells.get(id(value), TOP_CELL)
        # Arguments, globals, functions: runtime values.
        return BOTTOM_CELL

    # -------------------------------------------------------------- solving
    def solve(self) -> None:
        entry = self.function.entry_block
        self._executable.add(id(entry))
        self._visit_block(entry)
        while self._edge_worklist or self._ssa_worklist:
            while self._ssa_worklist:
                inst = self._ssa_worklist.pop()
                if inst.parent is not None and \
                        id(inst.parent) in self._executable:
                    self._visit_instruction(inst)
            if self._edge_worklist:
                pred, succ = self._edge_worklist.pop()
                key = (id(pred), id(succ))
                if key in self._edges:
                    continue
                self._edges.add(key)
                first_visit = id(succ) not in self._executable
                self._executable.add(id(succ))
                if first_visit:
                    self._visit_block(succ)
                else:
                    # A new in-edge changes only the φ meets.
                    for phi in succ.phis():
                        self._visit_instruction(phi)

    def _visit_block(self, block: BasicBlock) -> None:
        for inst in block.instructions:
            self._visit_instruction(inst)

    def _lower(self, inst: Instruction, cell: LatticeCell) -> None:
        """Move ``inst`` down the lattice, waking its users on change."""
        current = self._cells.get(id(inst), TOP_CELL)
        merged = meet(current, cell)
        if merged == current:
            return
        self._cells[id(inst)] = merged
        for use in inst.uses:
            user = use.user
            if isinstance(user, Instruction):
                self._ssa_worklist.append(user)

    def _mark_edge(self, pred: BasicBlock, succ: BasicBlock) -> None:
        if (id(pred), id(succ)) not in self._edges:
            self._edge_worklist.append((pred, succ))

    # ------------------------------------------------------- transfer rules
    def _visit_instruction(self, inst: Instruction) -> None:
        if isinstance(inst, PhiInst):
            self._visit_phi(inst)
        elif isinstance(inst, (BranchInst, SwitchInst)):
            self._visit_terminator(inst)
        elif isinstance(inst, BinaryInst):
            self._lower(inst, self._eval_binary(inst))
        elif isinstance(inst, ICmpInst):
            self._lower(inst, self._eval_icmp(inst))
        elif isinstance(inst, CastInst):
            self._lower(inst, self._eval_cast(inst))
        elif isinstance(inst, SelectInst):
            self._lower(inst, self._eval_select(inst))
        elif inst.is_terminator:
            pass  # ret / unreachable: no out-edges, no value
        else:
            # Loads, calls, allocas, GEPs: runtime values.
            self._lower(inst, BOTTOM_CELL)

    def _visit_phi(self, phi: PhiInst) -> None:
        block = phi.parent
        assert block is not None
        result = TOP_CELL
        for value, pred in phi.incoming():
            if not self.edge_executable(pred, block):
                continue
            result = meet(result, self.value_of(value))
            if result.is_bottom:
                break
        self._lower(phi, result)

    def _visit_terminator(self, term: Instruction) -> None:
        block = term.parent
        assert block is not None
        if isinstance(term, BranchInst):
            if not term.is_conditional:
                self._mark_edge(block, term.true_target)
                return
            cell = self.value_of(term.condition)
            if cell.is_top:
                return  # no evidence yet: keep both arms unexplored
            if cell.is_constant:
                taken = term.true_target if cell.constant else \
                    term.false_target
                self._mark_edge(block, taken)
            else:
                self._mark_edge(block, term.true_target)
                self._mark_edge(block, term.false_target)
            return
        assert isinstance(term, SwitchInst)
        cell = self.value_of(term.value)
        if cell.is_top:
            return
        if cell.is_constant:
            target = term.default
            for const, case_block in term.cases():
                if isinstance(const, ConstantInt) and \
                        const.value == cell.constant:
                    target = case_block
                    break
            self._mark_edge(block, target)
        else:
            for succ in term.successors():
                self._mark_edge(block, succ)

    def _eval_binary(self, inst: BinaryInst) -> LatticeCell:
        lhs = self.value_of(inst.lhs)
        rhs = self.value_of(inst.rhs)
        if lhs.is_bottom or rhs.is_bottom:
            return BOTTOM_CELL
        if lhs.is_top or rhs.is_top:
            return TOP_CELL
        ty = inst.type
        assert isinstance(ty, IntType)
        value = eval_binary(inst.opcode, ty, lhs.constant, rhs.constant)
        if value is None:
            return BOTTOM_CELL  # division by zero: a runtime error, not a value
        return const_cell(value)

    def _eval_icmp(self, inst: ICmpInst) -> LatticeCell:
        lhs = self.value_of(inst.lhs)
        rhs = self.value_of(inst.rhs)
        if lhs.is_bottom or rhs.is_bottom:
            return BOTTOM_CELL
        if lhs.is_top or rhs.is_top:
            return TOP_CELL
        lhs_ty = inst.lhs.type
        if not isinstance(lhs_ty, IntType):
            return BOTTOM_CELL
        result = eval_icmp(inst.predicate, lhs_ty, lhs.constant, rhs.constant)
        return const_cell(1 if result else 0)

    def _eval_cast(self, inst: CastInst) -> LatticeCell:
        operand = self.value_of(inst.value)
        if not operand.is_constant:
            return operand if operand.is_top else BOTTOM_CELL
        if not isinstance(inst.type, IntType):
            return BOTTOM_CELL
        if inst.opcode in (Opcode.ZEXT, Opcode.TRUNC):
            return const_cell(
                ConstantInt(inst.type, operand.constant).value)
        if inst.opcode is Opcode.SEXT:
            source_ty = inst.value.type
            assert isinstance(source_ty, IntType)
            signed = ConstantInt(source_ty, operand.constant).signed_value
            return const_cell(ConstantInt(inst.type, signed).value)
        return BOTTOM_CELL  # pointer/int conversions: not a pure integer

    def _eval_select(self, inst: SelectInst) -> LatticeCell:
        condition = self.value_of(inst.condition)
        if condition.is_top:
            return TOP_CELL
        if condition.is_constant:
            chosen = inst.true_value if condition.constant else \
                inst.false_value
            return self.value_of(chosen)
        return meet(self.value_of(inst.true_value),
                    self.value_of(inst.false_value))


from .registry import register_pass

register_pass(
    "sccp", SparseConditionalConstantPropagation,
    description="optimistic constant propagation that deletes untaken edges")
