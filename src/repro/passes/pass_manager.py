"""Pass manager and transformation statistics.

The pass manager runs a sequence of module/function passes, optionally
verifying the IR after each one, and accumulates the transformation counters
that the paper reports in Table 3 (functions inlined, loops unswitched, loops
unrolled, branches converted to branch-free form).

Since the analysis-manager refactor, every pass receives an
:class:`~repro.analysis.AnalysisManager` and returns a
:class:`~repro.analysis.PreservedAnalyses` summary.  Analyses (CFG,
dominator tree, loop info, value ranges, call graph) are requested through
the manager, which caches them across passes and invalidates exactly what a
pass reports it clobbered.  Cache hit/miss counters land in
:class:`TransformStats` next to the Table 3 counters so the compile-side
benefit is visible in the harness reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis import FUNCTION_ANALYSES, AnalysisManager, PreservedAnalyses
from ..ir import Function, Module, verify_module


@dataclass
class TransformStats:
    """Counters incremented by the transformation passes.

    The first four are exactly the rows of the paper's Table 3.
    """

    functions_inlined: int = 0
    loops_unswitched: int = 0
    loops_unrolled: int = 0
    branches_converted: int = 0

    # Additional counters used by tests and the ablation harness.
    allocas_promoted: int = 0
    aggregates_split: int = 0
    instructions_folded: int = 0
    instructions_combined: int = 0
    instructions_removed: int = 0
    redundancies_eliminated: int = 0
    jumps_threaded: int = 0
    blocks_merged: int = 0
    instructions_hoisted: int = 0
    checks_inserted: int = 0
    annotations_added: int = 0
    functions_removed: int = 0

    # Counters for the path-count-oriented passes (SCCP, load elimination,
    # algebraic simplification).
    branch_edges_deleted: int = 0
    blocks_removed: int = 0
    loads_eliminated: int = 0
    expressions_simplified: int = 0
    comparisons_canonicalized: int = 0

    # Analysis-cache behaviour of the pipeline run (filled in by the pass
    # manager from the analysis manager's counters).
    analysis_cache_hits: int = 0
    analysis_cache_misses: int = 0
    analysis_invalidations: int = 0

    def merge(self, other: "TransformStats") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def table3_row(self) -> Dict[str, int]:
        """The four counters the paper's Table 3 reports."""
        return {
            "functions_inlined": self.functions_inlined,
            "loops_unswitched": self.loops_unswitched,
            "loops_unrolled": self.loops_unrolled,
            "branches_converted": self.branches_converted,
        }


class Pass:
    """Base class of all passes.

    Subclasses override :meth:`run_on_module` or :meth:`run_on_function`.
    Both receive the pipeline's :class:`AnalysisManager` and return a
    :class:`PreservedAnalyses` summary (a plain ``bool`` "changed" return is
    still accepted and coerced conservatively, for simple ad-hoc passes).
    """

    #: Human-readable pass name (defaults to the class name).
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__
        self.stats = TransformStats()

    def run_on_module(self, module: Module,
                      analyses: Optional[AnalysisManager] = None
                      ) -> PreservedAnalyses:
        """Default module driver: run :meth:`run_on_function` on every
        defined function, applying per-function invalidation as it goes."""
        if analyses is None:
            analyses = AnalysisManager()
        changed = False
        for function in list(module.defined_functions()):
            epoch_before = function.ir_epoch
            preserved = PreservedAnalyses.from_legacy(
                self.run_on_function(function, analyses))
            analyses.after_function_pass(function, preserved, epoch_before)
            changed |= preserved.changed
        # Function-level invalidation already happened at finer grain, so
        # the surviving per-function entries are declared preserved here;
        # the module-level call graph is conservatively dropped (a function
        # pass may have deleted call sites).
        if not changed:
            return PreservedAnalyses.unchanged()
        return PreservedAnalyses.preserving(*FUNCTION_ANALYSES)

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager
                        ) -> PreservedAnalyses:  # pragma: no cover
        raise NotImplementedError(
            f"{self.name} implements neither run_on_module nor run_on_function")


@dataclass
class PassRunRecord:
    """What happened when one pass ran once."""

    pass_name: str
    changed: bool
    duration_seconds: float
    analysis_cache_hits: int = 0
    analysis_cache_misses: int = 0


class PassManager:
    """Runs passes over a module and collects statistics.

    Parameters
    ----------
    verify_after_each:
        Re-run the IR verifier after every pass; slow but catches pass bugs
        close to their source.  Tests enable this.
    max_iterations:
        When ``run_until_fixpoint`` is used, the maximum number of times the
        whole pipeline is repeated.
    analyses:
        The analysis manager shared by every pass in the pipeline.  One is
        created if not supplied; supplying one lets a driver share caches
        across several pipelines over the same module.
    """

    def __init__(self, verify_after_each: bool = False,
                 max_iterations: int = 4,
                 analyses: Optional[AnalysisManager] = None) -> None:
        self.passes: List[Pass] = []
        self.verify_after_each = verify_after_each
        self.max_iterations = max_iterations
        self.analyses = analyses or AnalysisManager()
        self.stats = TransformStats()
        self.history: List[PassRunRecord] = []
        #: The :class:`~repro.passes.registry.PipelineSpec` this manager was
        #: built from, when it came from the registry-driven builders.
        self.spec = None

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def extend(self, passes: List[Pass]) -> "PassManager":
        self.passes.extend(passes)
        return self

    def run(self, module: Module) -> bool:
        """Run every pass once, in order.  Returns True if anything changed."""
        changed = False
        for pass_ in self.passes:
            changed |= self._run_one(pass_, module)
        return changed

    def run_until_fixpoint(self, module: Module) -> bool:
        """Repeat the whole pipeline until no pass reports a change."""
        overall_changed = False
        for _ in range(self.max_iterations):
            changed = self.run(module)
            overall_changed |= changed
            if not changed:
                break
        return overall_changed

    def _run_one(self, pass_: Pass, module: Module) -> bool:
        cache = self.analyses.stats
        hits_before, misses_before = cache.hits, cache.misses
        invalidations_before = cache.invalidations
        start = time.perf_counter()
        preserved = PreservedAnalyses.from_legacy(
            pass_.run_on_module(module, self.analyses))
        duration = time.perf_counter() - start
        self.analyses.after_module_pass(module, preserved)

        hits = cache.hits - hits_before
        misses = cache.misses - misses_before
        self.history.append(PassRunRecord(
            pass_.name, preserved.changed, duration,
            analysis_cache_hits=hits, analysis_cache_misses=misses))
        self.stats.merge(pass_.stats)
        pass_.stats = TransformStats()
        self.stats.analysis_cache_hits += hits
        self.stats.analysis_cache_misses += misses
        self.stats.analysis_invalidations += \
            cache.invalidations - invalidations_before

        if self.verify_after_each:
            try:
                verify_module(module)
            except Exception as exc:
                raise RuntimeError(
                    f"IR verification failed after pass {pass_.name}") from exc
        return preserved.changed
