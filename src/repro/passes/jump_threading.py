"""Jump threading.

"An optimization called jump threading checks whether a conditional branch
jumps to a location where another condition is subsumed by the first one; if
yes, the first branch is redirected correspondingly, turning two jumps into
one." (§3, Simplifying control flow.)

The implementation handles the common SSA shape: a block whose conditional
branch tests a phi (or a comparison of a phi against a constant).  Every
predecessor that contributes a constant already determines the branch
direction, so its edge is redirected straight to the final target, skipping
the test block — one fewer dynamic branch on that path, and one fewer forked
state for a symbolic executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis import AnalysisManager, PreservedAnalyses
from ..ir import (
    BasicBlock, BranchInst, ConstantInt, Function, ICmpInst, Instruction,
    IntType, PhiInst, Value, eval_icmp,
)
from .pass_manager import Pass


def _threadable_condition(block: BasicBlock) -> Optional[Tuple[PhiInst, Optional[ICmpInst]]]:
    """If ``block``'s conditional branch depends only on a local phi (possibly
    through one comparison with a constant), return (phi, icmp)."""
    term = block.terminator
    if not isinstance(term, BranchInst) or not term.is_conditional:
        return None
    condition = term.condition
    if isinstance(condition, PhiInst) and condition.parent is block:
        return condition, None
    if isinstance(condition, ICmpInst) and condition.parent is block:
        lhs, rhs = condition.lhs, condition.rhs
        if isinstance(lhs, PhiInst) and lhs.parent is block and \
                isinstance(rhs, ConstantInt):
            return lhs, condition
    return None


@dataclass
class JumpThreadingParams:
    """Knobs of :class:`JumpThreading`.

    ``unsafe_phi`` disables the outside-use phi check below, re-opening a
    fuzzer-found miscompile (threading past a loop-test block whose phi
    the loop body still uses).  It exists ONLY so the
    translation-validation negative tests can plant a known-bad module
    and assert relcheck catches it; never enable it in a real pipeline."""

    unsafe_phi: bool = False


def _block_is_forwardable(block: BasicBlock, phi: PhiInst,
                          icmp: Optional[ICmpInst],
                          check_outside_uses: bool = True) -> bool:
    """The block may be bypassed only if it computes nothing else."""
    allowed = {id(phi)}
    if icmp is not None:
        allowed.add(id(icmp))
    term = block.terminator
    for inst in block.instructions:
        if inst is term or id(inst) in allowed:
            continue
        if isinstance(inst, PhiInst):
            continue  # other phis merely merge values; they stay in place
        return False
    if not check_outside_uses:
        return True
    # No phi in the block may be used outside it — the threaded phi
    # included.  A threaded edge bypasses the block, so an outside user of
    # any of its phis would need the bypassed value materialized on the
    # new edge (LLVM duplicates the block body for this; we don't), and
    # the block may stop dominating the user altogether, leaving a use of
    # a non-dominating def behind (found by differential fuzzing: a loop
    # counter `i = phi(0, i+1)` tested by the branch *and* incremented in
    # the body was threaded past, turning the increment into `t = add t,
    # 1` once SimplifyCFG folded the orphaned phi).
    for other in block.phis():
        for use in other.uses:
            user = use.user
            if user is icmp:
                continue
            if isinstance(user, Instruction) and user.parent is not block:
                return False
    return True


class JumpThreading(Pass):
    """Redirect predecessor edges over blocks whose branch they determine."""

    name = "jump-threading"

    def __init__(self, params: Optional[JumpThreadingParams] = None) -> None:
        super().__init__()
        self.params = params or JumpThreadingParams()

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        changed = False
        progress = True
        while progress:
            progress = False
            for block in list(function.blocks):
                if block is function.entry_block:
                    continue
                if self._thread_block(function, block):
                    progress = True
                    changed = True
                    break
        # Threading redirects CFG edges.
        return PreservedAnalyses.none() if changed \
            else PreservedAnalyses.unchanged()

    def _thread_block(self, function: Function, block: BasicBlock) -> bool:
        found = _threadable_condition(block)
        if found is None:
            return False
        phi, icmp = found
        if not _block_is_forwardable(
                block, phi, icmp,
                check_outside_uses=not self.params.unsafe_phi):
            return False
        term = block.terminator
        assert isinstance(term, BranchInst)
        changed = False
        for value, pred in list(phi.incoming()):
            if not isinstance(value, ConstantInt):
                continue
            if len(phi.incoming_blocks) <= 1:
                break  # leave the last edge for SimplifyCFG to clean up
            direction = self._evaluate(value, icmp)
            if direction is None:
                continue
            target = term.true_target if direction else term.false_target
            if target is block:
                continue
            # Redirect pred's edge from `block` to `target`.
            pred_term = pred.terminator
            if pred_term is None:
                continue
            # A predecessor reaching `block` over two edges (both arms of its
            # branch) would need value duplication; skip that rare case.
            if sum(1 for op in pred_term.operands if op is block) != 1:
                continue
            # The target's phis need an incoming value for the new edge; it is
            # whatever would have flowed through `block` from `pred`.
            resolvable = True
            target_values: List[Tuple[PhiInst, Value]] = []
            for target_phi in target.phis():
                through = target_phi.incoming_value_for(block)
                if isinstance(through, PhiInst) and through.parent is block:
                    through = through.incoming_value_for(pred)
                elif isinstance(through, Instruction) and through.parent is block:
                    resolvable = False
                    break
                target_values.append((target_phi, through))
            if not resolvable:
                continue
            for index, op in enumerate(pred_term.operands):
                if op is block:
                    pred_term.set_operand(index, target)
            for target_phi, through in target_values:
                target_phi.add_incoming(through, pred)
            for block_phi in block.phis():
                block_phi.remove_incoming(pred)
            self.stats.jumps_threaded += 1
            changed = True
        return changed

    @staticmethod
    def _evaluate(value: ConstantInt, icmp: Optional[ICmpInst]) -> Optional[bool]:
        if icmp is None:
            return bool(value.value)
        rhs = icmp.rhs
        assert isinstance(rhs, ConstantInt)
        ty = value.type
        if not isinstance(ty, IntType):
            return None
        return eval_icmp(icmp.predicate, ty, value.value, rhs.value)


from .registry import flag_param, register_pass

register_pass(
    "jump-threading",
    lambda **params: JumpThreading(JumpThreadingParams(**params)),
    params=[flag_param("unsafe-phi", "unsafe_phi", JumpThreadingParams)],
    description="thread branches over blocks with statically known exits "
                "(unsafe-phi re-opens a known miscompile, for the "
                "relcheck negative tests only)")
