"""CFG simplification.

Performs the cleanups every real compiler does between other passes:

* remove blocks that are unreachable from the entry,
* fold conditional branches whose condition is a constant,
* merge a block into its unique predecessor when that predecessor has a
  single successor,
* skip empty forwarding blocks (a block containing only an unconditional
  branch),
* turn conditional branches with identical targets into unconditional ones,
* drop phi nodes that have a single incoming value.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis import (
    AnalysisManager, PreservedAnalyses, remove_unreachable_blocks,
)
from ..ir import (
    BasicBlock, BranchInst, ConstantInt, Function, PhiInst, SwitchInst,
)
from .pass_manager import Pass


class SimplifyCFG(Pass):
    """Iteratively apply local CFG simplifications until a fixpoint."""

    name = "simplifycfg"

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        changed = False
        while True:
            local = False
            local |= remove_unreachable_blocks(function) > 0
            local |= self._fold_constant_branches(function)
            local |= self._canonicalize_same_target_branches(function)
            local |= remove_unreachable_blocks(function) > 0
            local |= self._remove_single_incoming_phis(function)
            local |= self._merge_into_predecessor(function)
            local |= self._skip_forwarding_blocks(function)
            local |= self._remove_single_incoming_phis(function)
            if not local:
                break
            changed = True
        # This pass exists to restructure the CFG: when it fires, every
        # CFG-derived analysis for this function is stale.
        return PreservedAnalyses.none() if changed \
            else PreservedAnalyses.unchanged()

    # ------------------------------------------------------------ rewrites
    def _fold_constant_branches(self, function: Function) -> bool:
        changed = False
        for block in list(function.blocks):
            term = block.terminator
            if isinstance(term, BranchInst) and term.is_conditional and \
                    isinstance(term.condition, ConstantInt):
                taken = term.true_target if term.condition.value else \
                    term.false_target
                not_taken = term.false_target if term.condition.value else \
                    term.true_target
                term.erase_from_parent()
                from ..ir import IRBuilder
                builder = IRBuilder()
                builder.set_insert_point(block)
                builder.br(taken)
                if not_taken is not taken:
                    not_taken.remove_predecessor(block)
                changed = True
                self.stats.instructions_folded += 1
            elif isinstance(term, SwitchInst) and \
                    isinstance(term.value, ConstantInt):
                target = term.default
                for const, case_block in term.cases():
                    if isinstance(const, ConstantInt) and \
                            const.value == term.value.value:
                        target = case_block
                        break
                others = {id(s) for s in term.successors()} - {id(target)}
                all_succs = term.successors()
                term.erase_from_parent()
                from ..ir import IRBuilder
                builder = IRBuilder()
                builder.set_insert_point(block)
                builder.br(target)
                for succ in all_succs:
                    if id(succ) in others:
                        succ.remove_predecessor(block)
                changed = True
                self.stats.instructions_folded += 1
        return changed

    def _canonicalize_same_target_branches(self, function: Function) -> bool:
        changed = False
        for block in function.blocks:
            term = block.terminator
            if isinstance(term, BranchInst) and term.is_conditional and \
                    term.true_target is term.false_target:
                target = term.true_target
                term.erase_from_parent()
                from ..ir import IRBuilder
                builder = IRBuilder()
                builder.set_insert_point(block)
                builder.br(target)
                changed = True
        return changed

    def _remove_single_incoming_phis(self, function: Function) -> bool:
        changed = False
        for block in function.blocks:
            for phi in list(block.phis()):
                if len(phi.operands) == 1:
                    value = phi.operands[0]
                    if self._feeds_from(value, phi):
                        continue
                    phi.replace_all_uses_with(value)
                    phi.erase_from_parent()
                    changed = True
                elif len(phi.operands) > 1:
                    first = phi.operands[0]
                    if all(op is first for op in phi.operands) and \
                            first is not phi and \
                            not self._feeds_from(first, phi):
                        phi.replace_all_uses_with(first)
                        phi.erase_from_parent()
                        changed = True
        return changed

    @staticmethod
    def _feeds_from(value, phi, limit: int = 64) -> bool:
        """True if ``value`` transitively reads ``phi`` through non-phi
        instructions.  Collapsing such a phi would splice its replacement
        into its own operand chain (``t = add t, 1``), which is not SSA and
        sends downstream rewriters into infinite loops.  This only triggers
        on input that already violates dominance, so the walk is bounded and
        bails conservatively."""
        from ..ir import Instruction
        stack = [value]
        seen: set = set()
        while stack:
            current = stack.pop()
            if current is phi:
                return True
            if not isinstance(current, Instruction) or \
                    isinstance(current, PhiInst) or id(current) in seen:
                continue
            if len(seen) >= limit:
                return True  # give up conservatively; keep the phi
            seen.add(id(current))
            stack.extend(current.operands)
        return False

    def _merge_into_predecessor(self, function: Function) -> bool:
        """Merge ``block`` into ``pred`` when pred's only successor is block
        and block's only predecessor is pred."""
        changed = False
        for block in list(function.blocks):
            if block is function.entry_block:
                continue
            preds = block.predecessors()
            if len(preds) != 1:
                continue
            pred = preds[0]
            if pred is block:
                continue
            if len(pred.successors()) != 1 or pred.successors()[0] is not block:
                continue
            term = pred.terminator
            if not isinstance(term, BranchInst):
                continue
            # Phis in block have a single incoming value (from pred).
            for phi in list(block.phis()):
                value = phi.incoming_value_for(pred)
                phi.replace_all_uses_with(value)
                phi.erase_from_parent()
            term.erase_from_parent()
            for inst in list(block.instructions):
                block.remove_instruction(inst)
                pred.append_instruction(inst)
            # Successor phis must now refer to pred instead of block.
            for succ in pred.successors():
                for phi in succ.phis():
                    for i, incoming in enumerate(phi.incoming_blocks):
                        if incoming is block:
                            phi.incoming_blocks[i] = pred
            block.replace_all_uses_with(pred)
            function.remove_block(block)
            self.stats.blocks_merged += 1
            changed = True
        return changed

    def _skip_forwarding_blocks(self, function: Function) -> bool:
        """Redirect edges through blocks that only contain ``br label %next``."""
        changed = False
        for block in list(function.blocks):
            if block is function.entry_block:
                continue
            if len(block.instructions) != 1:
                continue
            term = block.terminator
            if not isinstance(term, BranchInst) or term.is_conditional:
                continue
            target = term.true_target
            if target is block:
                continue
            # If the target has phi nodes, only forward when doing so keeps
            # the phi well-formed (no duplicate predecessor conflicts).
            preds = block.predecessors()
            if not preds:
                continue
            target_phis = target.phis()
            if target_phis:
                target_pred_ids = {id(p) for p in target.predecessors()}
                if any(id(p) in target_pred_ids for p in preds):
                    continue
            redirected = False
            for pred in preds:
                pred_term = pred.terminator
                if pred_term is None:
                    continue
                for index, op in enumerate(pred_term.operands):
                    if op is block:
                        pred_term.set_operand(index, target)
                        redirected = True
                for phi in target_phis:
                    value = phi.incoming_value_for(block)
                    phi.add_incoming(value, pred)
            if redirected:
                for phi in target_phis:
                    phi.remove_incoming(block)
                changed = True
        return changed


from .registry import register_pass

register_pass(
    "simplifycfg", SimplifyCFG,
    description="remove unreachable blocks, merge and thread trivial blocks")
