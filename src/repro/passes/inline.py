"""Function inlining.

The paper's -OSYMBEX prototype "aggressively inlines functions in order to
benefit from simplifications due to function specialization" (§4).  The
inliner here is threshold-based like LLVM's: each call site is inlined when
the callee's estimated cost is below a threshold.  The -OVERIFY pipelines
raise the threshold dramatically (and drop the "don't inline functions with
loops" restriction), which is what produces the 2x increase in inlined
functions between -O3 and -OSYMBEX in Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis import AnalysisManager, PreservedAnalyses
from ..ir import (
    Argument, BasicBlock, BranchInst, CallInst, ConstantInt, Function,
    Instruction, Module, PhiInst, ReturnInst, UndefValue, Value,
)
from .pass_manager import Pass


@dataclass
class InlineParams:
    """Cost-model parameters for the inliner."""

    #: Maximum estimated callee size (in instructions) to inline.
    threshold: int = 100
    #: Whether callees containing loops may be inlined.
    allow_loops: bool = False
    #: Bonus subtracted from the cost when any argument is a constant
    #: (constant arguments enable specialization after inlining).
    constant_arg_bonus: int = 20
    #: Hard cap on how many instructions a single caller may grow to.
    caller_size_cap: int = 50_000


def _callee_cost(callee: Function) -> int:
    return callee.instruction_count()


def _callee_has_loops(callee: Function, analyses: AnalysisManager) -> bool:
    # Callees are not mutated while they are being inlined *into* other
    # functions, so this lookup is a cache hit for every call site after
    # the first.
    return len(analyses.loop_info(callee).loops) > 0


def inline_call(call: CallInst) -> bool:
    """Inline ``call`` (a direct call to a defined function) into its caller.

    Returns True on success.  The callee is cloned, its arguments are bound
    to the call's operands, its returns are rewired to a continuation block,
    and the call instruction is removed.
    """
    callee = call.callee
    if not isinstance(callee, Function) or callee.is_declaration:
        return False
    caller_block = call.parent
    if caller_block is None or caller_block.parent is None:
        return False
    caller = caller_block.parent
    if caller is callee:
        return False  # direct recursion is never inlined

    # ---------------------------------------------------------------- split
    call_index = caller_block.instructions.index(call)
    continuation = BasicBlock(caller.next_name(f"{callee.name}.exit"))
    caller.insert_block_after(caller_block, continuation)
    trailing = caller_block.instructions[call_index + 1:]
    for inst in trailing:
        caller_block.remove_instruction(inst)
        continuation.append_instruction(inst)
    # Successor phis must now see the continuation block as their predecessor.
    for succ in continuation.successors():
        for phi in succ.phis():
            for i, incoming in enumerate(phi.incoming_blocks):
                if incoming is caller_block:
                    phi.incoming_blocks[i] = continuation

    # ---------------------------------------------------------------- clone
    value_map: Dict[int, Value] = {}
    for argument, actual in zip(callee.arguments, call.args):
        value_map[id(argument)] = actual
    block_map: Dict[int, BasicBlock] = {}
    cloned_blocks: List[BasicBlock] = []
    for block in callee.blocks:
        clone = BasicBlock(caller.next_name(f"{callee.name}.{block.name}"))
        block_map[id(block)] = clone
        cloned_blocks.append(clone)
    insert_after = caller_block
    for clone in cloned_blocks:
        caller.insert_block_after(insert_after, clone)
        insert_after = clone

    cloned_instructions: List[Tuple[Instruction, Instruction]] = []
    for block, clone_block in zip(callee.blocks, cloned_blocks):
        for inst in block.instructions:
            clone = inst.clone()
            clone.name = caller.next_name(inst.name or "inl") \
                if not clone.type.is_void else clone.name
            clone_block.append_instruction(clone)
            value_map[id(inst)] = clone
            cloned_instructions.append((inst, clone))

    # Remap operands (and phi incoming blocks) of every cloned instruction.
    for original, clone in cloned_instructions:
        for index, operand in enumerate(list(clone.operands)):
            if isinstance(operand, BasicBlock):
                mapped: Optional[Value] = block_map.get(id(operand))
            else:
                mapped = value_map.get(id(operand))
            if mapped is not None:
                clone.set_operand(index, mapped)
        if isinstance(clone, PhiInst):
            clone.incoming_blocks = [
                block_map.get(id(b), b) for b in clone.incoming_blocks]

    # ---------------------------------------------------------------- wire up
    return_values: List[Tuple[Value, BasicBlock]] = []
    for clone_block in cloned_blocks:
        term = clone_block.terminator
        if isinstance(term, ReturnInst):
            value = term.value
            term.erase_from_parent()
            branch = BranchInst(continuation)
            clone_block.append_instruction(branch)
            if value is not None:
                return_values.append((value, clone_block))
            else:
                return_values.append((UndefValue(call.type), clone_block))

    entry_clone = block_map[id(callee.entry_block)]
    caller_block.append_instruction(BranchInst(entry_clone))

    # Replace uses of the call's result.
    if not call.type.is_void and call.num_uses > 0:
        if len(return_values) == 1:
            call.replace_all_uses_with(return_values[0][0])
        elif len(return_values) > 1:
            phi = PhiInst(call.type, caller.next_name(f"{callee.name}.ret"))
            continuation.insert_instruction(0, phi)
            for value, block in return_values:
                phi.add_incoming(value, block)
            call.replace_all_uses_with(phi)
        else:
            call.replace_all_uses_with(UndefValue(call.type))
    call.erase_from_parent()
    return True


class Inliner(Pass):
    """Bottom-up threshold-based inliner."""

    name = "inline"

    def __init__(self, params: Optional[InlineParams] = None) -> None:
        super().__init__()
        self.params = params or InlineParams()

    def run_on_module(self, module: Module,
                      analyses: AnalysisManager = None) -> PreservedAnalyses:
        if analyses is None:
            analyses = AnalysisManager()
        graph = analyses.call_graph(module)
        self._recursive = {
            function.name for function in module.defined_functions()
            if graph.is_recursive(function.name)}
        changed = False
        for caller in graph.bottom_up_order():
            changed |= self._inline_into(caller, module, analyses)
        # Inlining rewrites callers wholesale and changes the call graph.
        return PreservedAnalyses.none() if changed \
            else PreservedAnalyses.unchanged()

    def _inline_into(self, caller: Function, module: Module,
                     analyses: AnalysisManager) -> bool:
        changed = False
        # Iterate until no more call sites in this caller are inlinable;
        # inlining may expose new (cloned) call sites.
        progress = True
        while progress:
            progress = False
            if caller.instruction_count() > self.params.caller_size_cap:
                break
            for block in list(caller.blocks):
                for inst in list(block.instructions):
                    if not isinstance(inst, CallInst):
                        continue
                    callee = inst.callee
                    if not isinstance(callee, Function) or callee.is_declaration:
                        continue
                    if not self._should_inline(caller, callee, inst, analyses):
                        continue
                    if inline_call(inst):
                        self.stats.functions_inlined += 1
                        progress = True
                        changed = True
                        break
                if progress:
                    break
        return changed

    def _should_inline(self, caller: Function, callee: Function,
                       call: CallInst, analyses: AnalysisManager) -> bool:
        if callee is caller:
            return False
        if callee.attributes.get("no_inline"):
            return False
        if callee.name in getattr(self, "_recursive", set()):
            return False
        if callee.attributes.get("always_inline"):
            return True
        cost = _callee_cost(callee)
        if any(isinstance(arg, ConstantInt) for arg in call.args):
            cost -= self.params.constant_arg_bonus
        if not self.params.allow_loops and \
                _callee_has_loops(callee, analyses):
            return False
        return cost <= self.params.threshold


from .registry import flag_param, int_param, register_pass

register_pass(
    "inline", lambda **params: Inliner(InlineParams(**params)),
    params=[
        int_param("threshold", "threshold", InlineParams),
        flag_param("loops", "allow_loops", InlineParams),
        int_param("const-bonus", "constant_arg_bonus", InlineParams),
        int_param("caller-cap", "caller_size_cap", InlineParams),
    ],
    description="inline direct calls below the cost threshold")
