"""Loop unswitching.

"Another example is loop unswitching, as seen in Section 1" — the paper's
motivating example relies on it: the loop-invariant condition ``any != 0`` is
moved out of the loop and two specialized copies of the loop body are
emitted.  This turns O(3^n) explored paths into O(2^n) for the wc kernel.

The implementation clones the whole loop, replaces the invariant conditional
branch with an unconditional branch to its *true* target in the original and
to its *false* target in the clone, and makes the preheader branch on the
invariant condition to select between the two specialized loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis import AnalysisManager, Loop, PreservedAnalyses
from ..ir import (
    BasicBlock, BranchInst, ConstantInt, Function, Instruction, Value,
)
from .loop_utils import (
    add_cloned_incoming_to_exit_phis, clone_loop, ensure_preheader,
    insert_lcssa_phis, single_exit_block,
)
from .pass_manager import Pass


@dataclass
class UnswitchParams:
    """Cost model for unswitching."""

    #: Maximum loop size (instructions) that may be duplicated.  CPU-oriented
    #: pipelines keep this small to limit code growth; -OVERIFY raises it.
    max_loop_size: int = 64
    #: Maximum number of unswitching steps applied to one function per run
    #: (each step doubles part of the code).
    max_unswitches_per_function: int = 8


def _loop_size(loop: Loop) -> int:
    return sum(len(block.instructions) for block in loop.blocks)


def _is_hoistable_condition(loop: Loop, condition: Value) -> bool:
    """True when ``condition`` is computed inside the loop but only from
    loop-invariant values by a pure instruction, so it can be hoisted to the
    preheader as part of unswitching (what LLVM's unswitcher does too)."""
    from ..ir import BinaryInst, CastInst, ICmpInst

    if not isinstance(condition, (ICmpInst, BinaryInst, CastInst)):
        return False
    if not loop.contains_instruction(condition):
        return False
    return all(loop.is_invariant(op) for op in condition.operands)


def _find_invariant_branch(loop: Loop) -> Optional[BranchInst]:
    """The first conditional branch inside the loop whose condition is
    loop-invariant (or trivially hoistable) and not a constant."""
    for block in loop.blocks:
        term = block.terminator
        if isinstance(term, BranchInst) and term.is_conditional:
            condition = term.condition
            if isinstance(condition, ConstantInt):
                continue
            if loop.is_invariant(condition) or \
                    _is_hoistable_condition(loop, condition):
                # Both targets must stay inside the loop; unswitching an
                # exiting branch is a different transformation (loop
                # rotation / peeling) that we do not perform here.
                if loop.contains(term.true_target) and \
                        loop.contains(term.false_target):
                    return term
    return None


class LoopUnswitching(Pass):
    """Hoist loop-invariant conditions out of loops by duplicating the loop."""

    name = "loop-unswitch"

    def __init__(self, params: Optional[UnswitchParams] = None) -> None:
        super().__init__()
        self.params = params or UnswitchParams()

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        changed = False
        for _ in range(self.params.max_unswitches_per_function):
            # Each successful unswitch bumps the function epoch, so this
            # re-request transparently recomputes; otherwise it is a hit.
            loop_info = analyses.loop_info(function)
            unswitched = False
            for loop in loop_info.loops:
                if _loop_size(loop) > self.params.max_loop_size:
                    continue
                if self._unswitch(function, loop, analyses):
                    self.stats.loops_unswitched += 1
                    changed = True
                    unswitched = True
                    break  # loop structures changed; recompute LoopInfo
            if not unswitched:
                break
        # `changed` reports unswitches to the fixpoint driver; side effects
        # of abandoned attempts (preheader creation, condition hoisting,
        # partial LCSSA phis) bump the epoch and so invalidate cached
        # analyses on next lookup.
        return PreservedAnalyses.none() if changed \
            else PreservedAnalyses.unchanged()

    def _unswitch(self, function: Function, loop: Loop,
                  analyses: AnalysisManager) -> bool:
        branch = _find_invariant_branch(loop)
        if branch is None or branch.true_target is branch.false_target:
            return False
        preheader = ensure_preheader(loop)
        if preheader is None:
            return False
        exit_block = single_exit_block(loop)
        if exit_block is None:
            return False
        condition = branch.condition
        # A condition computed inside the loop purely from invariant operands
        # is hoisted into the preheader first (it then dominates both loop
        # copies and the preheader's new conditional branch).
        if isinstance(condition, Instruction) and \
                loop.contains_instruction(condition) and \
                _is_hoistable_condition(loop, condition):
            owner_block = condition.parent
            assert owner_block is not None
            owner_block.remove_instruction(condition)
            preheader_term = preheader.terminator
            assert preheader_term is not None
            preheader.insert_before(preheader_term, condition)
        domtree = analyses.dominator_tree(function)
        if isinstance(condition, Instruction):
            if condition.parent is None or \
                    not domtree.dominates(condition.parent, preheader):
                return False
        if not insert_lcssa_phis(loop, exit_block, domtree):
            return False

        cloned = clone_loop(loop, "unsw")
        add_cloned_incoming_to_exit_phis(loop, [exit_block], cloned)

        # Original copy: the invariant condition is treated as true.
        true_target = branch.true_target
        false_target = branch.false_target
        owner = branch.parent
        assert owner is not None
        branch.erase_from_parent()
        owner.append_instruction(BranchInst(true_target))
        false_target.remove_predecessor(owner)

        # Cloned copy: the invariant condition is treated as false.
        cloned_owner = cloned.mapped_block(owner)
        cloned_term = cloned_owner.terminator
        if isinstance(cloned_term, BranchInst) and cloned_term.is_conditional:
            cloned_true = cloned_term.true_target
            cloned_false = cloned_term.false_target
            cloned_term.erase_from_parent()
            cloned_owner.append_instruction(BranchInst(cloned_false))
            cloned_true.remove_predecessor(cloned_owner)

        # Preheader now selects between the two specialized loops.
        preheader_term = preheader.terminator
        assert isinstance(preheader_term, BranchInst)
        original_header = loop.header
        cloned_header = cloned.mapped_block(original_header)
        preheader_term.erase_from_parent()
        preheader.append_instruction(
            BranchInst(original_header, condition, cloned_header))
        # Header phis of the original keep their preheader incoming; the
        # cloned header phis already reference the preheader as well (the
        # preheader is outside the loop, so cloning left it in place).
        return True


from .registry import int_param, register_pass

register_pass(
    "loop-unswitch", lambda **params: LoopUnswitching(UnswitchParams(**params)),
    params=[
        int_param("size", "max_loop_size", UnswitchParams),
        int_param("max", "max_unswitches_per_function", UnswitchParams),
    ],
    description="hoist invariant conditions out of loops by duplication")
