"""Loop unrolling (full unrolling of counted loops, via iterative peeling).

The -OSYMBEX prototype "removes loops from the program whenever possible,
even if this increases the program size" (§4).  For a path-exploring
verification tool, a fully unrolled loop contributes straight-line code
instead of one forking point per iteration.

Strategy: for a loop whose trip count is a known small constant, peel one
iteration at a time — clone the loop body, route the preheader into the
peeled copy, and route the peeled copy's back edge into the original loop.
After ``trip_count`` peels the original loop's condition folds to a constant
and SimplifyCFG deletes the now-dead loop.  Peeling reuses exactly the same
cloning machinery as unswitching, which keeps the two transformations
consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis import (
    AnalysisManager, Loop, PreservedAnalyses, compute_trip_count,
)
from ..ir import BasicBlock, BranchInst, Function, Instruction, PhiInst
from .loop_utils import (
    add_cloned_incoming_to_exit_phis, clone_loop, ensure_preheader,
    insert_lcssa_phis, single_exit_block,
)
from .pass_manager import Pass


@dataclass
class UnrollParams:
    """Cost model for full unrolling."""

    #: Maximum trip count that will be fully unrolled.
    max_trip_count: int = 8
    #: Maximum (trip count x loop size) budget in instructions.
    max_unrolled_size: int = 256


def _loop_size(loop: Loop) -> int:
    return sum(len(block.instructions) for block in loop.blocks)


class LoopUnrolling(Pass):
    """Fully unroll small counted loops."""

    name = "loop-unroll"

    def __init__(self, params: Optional[UnrollParams] = None) -> None:
        super().__init__()
        self.params = params or UnrollParams()

    def run_on_function(self, function: Function,
                        analyses: AnalysisManager) -> PreservedAnalyses:
        if function.is_declaration:
            return PreservedAnalyses.unchanged()
        changed = False
        # Re-discover loops after each successful unroll because peeling
        # rewrites the region around the loop (the epoch bump makes the
        # manager recompute; when nothing changed, it is a cache hit).
        for _ in range(16):
            loop_info = analyses.loop_info(function)
            unrolled = False
            for loop in loop_info.innermost_loops():
                if self._try_unroll(function, loop, analyses):
                    self.stats.loops_unrolled += 1
                    changed = True
                    unrolled = True
                    break
            if not unrolled:
                break
        # `changed` reports unrolls to the fixpoint driver; side effects of
        # abandoned attempts (preheader creation, partial LCSSA phis) bump
        # the epoch and so invalidate cached analyses on next lookup.
        return PreservedAnalyses.none() if changed \
            else PreservedAnalyses.unchanged()

    # ------------------------------------------------------------ unrolling
    def _try_unroll(self, function: Function, loop: Loop,
                    analyses: AnalysisManager) -> bool:
        trip = compute_trip_count(loop, max_count=self.params.max_trip_count + 1)
        if trip is None or trip.count > self.params.max_trip_count:
            return False
        if trip.count == 0:
            # A loop whose body never executes needs no peeling; constant
            # propagation and SimplifyCFG will delete it.
            return False
        size = _loop_size(loop)
        if trip.count * size > self.params.max_unrolled_size:
            return False
        if len(loop.latches) != 1:
            return False
        preheader = ensure_preheader(loop)
        if preheader is None:
            return False
        exit_block = single_exit_block(loop)
        if exit_block is None:
            return False
        domtree = analyses.dominator_tree(function)
        if not insert_lcssa_phis(loop, exit_block, domtree):
            return False
        for _ in range(trip.count):
            if not self._peel_once(function, loop, exit_block):
                return False
            # Recompute the loop structure: the original loop's blocks are
            # unchanged, but its preheader is now the peeled latch.
        # After trip_count peels the original loop body can never execute
        # again, so its exiting branch is rewritten to leave unconditionally;
        # SimplifyCFG then deletes the dead body and back edge.
        self._seal_original_loop(loop, trip.exit_block)
        return True

    @staticmethod
    def _seal_original_loop(loop: Loop, exiting_block: BasicBlock) -> None:
        term = exiting_block.terminator
        if not isinstance(term, BranchInst) or not term.is_conditional:
            return
        outside = [t for t in term.successors() if not loop.contains(t)]
        inside = [t for t in term.successors() if loop.contains(t)]
        if len(outside) != 1 or len(inside) != 1:
            return
        term.erase_from_parent()
        exiting_block.append_instruction(BranchInst(outside[0]))
        inside[0].remove_predecessor(exiting_block)

    def _peel_once(self, function: Function, loop: Loop,
                   exit_block: BasicBlock) -> bool:
        preheader = loop.preheader()
        if preheader is None:
            preheader = ensure_preheader(loop)
            if preheader is None:
                return False
        latch = loop.latches[0]
        header = loop.header

        cloned = clone_loop(loop, "peel")
        add_cloned_incoming_to_exit_phis(loop, [exit_block], cloned)
        cloned_header = cloned.mapped_block(header)
        cloned_latch = cloned.mapped_block(latch)

        # 1. Preheader enters the peeled copy instead of the original loop.
        preheader_term = preheader.terminator
        assert preheader_term is not None
        for index, op in enumerate(preheader_term.operands):
            if op is header:
                preheader_term.set_operand(index, cloned_header)

        # 2. The peeled copy's back edge continues into the original loop.
        cloned_latch_term = cloned_latch.terminator
        assert cloned_latch_term is not None
        for index, op in enumerate(cloned_latch_term.operands):
            if op is cloned_header:
                cloned_latch_term.set_operand(index, header)

        # 3. Header phis: the original header now receives its "initial"
        #    values from the peeled latch (the value after one iteration),
        #    and the peeled header keeps only the preheader entry.
        for phi in header.phis():
            cloned_phi = cloned.mapped_value(phi)
            assert isinstance(cloned_phi, PhiInst)
            init_value = phi.incoming_value_for(preheader)
            latch_value = phi.incoming_value_for(latch)
            # Original loop: replace the preheader entry with the value the
            # peeled iteration produces on its back edge.
            phi.remove_incoming(preheader)
            phi.add_incoming(cloned.mapped_value(latch_value), cloned_latch)
            # Peeled copy: it executes exactly once, so it only keeps the
            # initial value coming from the preheader.
            cloned_phi.remove_incoming(cloned_latch)
            # The cloned phi's preheader entry still refers to the original
            # initial value, which is correct.
        # 4. The peeled copy's header phis now have a single incoming value;
        #    SimplifyCFG will fold them.  Nothing else to do.
        return True


from .registry import int_param, register_pass

register_pass(
    "loop-unroll", lambda **params: LoopUnrolling(UnrollParams(**params)),
    params=[
        int_param("trips", "max_trip_count", UnrollParams),
        int_param("size", "max_unrolled_size", UnrollParams),
    ],
    description="fully unroll small counted loops")
