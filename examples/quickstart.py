#!/usr/bin/env python3
"""Quickstart: compile the paper's wc kernel with -O0 and -OVERIFY, look at
the code each build produces, and verify both with the symbolic executor.

Run with:  python examples/quickstart.py
"""

from repro.analysis import module_metrics
from repro.ir import print_function
from repro.pipelines import CompileOptions, OptLevel, compile_source
from repro.symex import SymexLimits, explore
from repro.workloads import WC_PROGRAM

SYMBOLIC_BYTES = 4


def build_and_verify(level: OptLevel):
    """Compile the wc program at `level` and exhaustively verify it."""
    compiled = compile_source(WC_PROGRAM, CompileOptions(level=level))
    metrics = module_metrics(compiled.module)
    report = explore(compiled.module, SYMBOLIC_BYTES,
                     limits=SymexLimits(timeout_seconds=120))
    print(f"{level}:")
    print(f"  static instructions : {compiled.instruction_count}")
    print(f"  conditional branches: {metrics.conditional_branches}")
    print(f"  select instructions : {metrics.selects}")
    print(f"  compile time        : {compiled.compile_seconds * 1000:.0f} ms")
    print(f"  explored paths      : {report.stats.total_paths}")
    print(f"  interpreted instrs  : {report.stats.instructions_interpreted}")
    print(f"  verification time   : {report.stats.wall_seconds * 1000:.0f} ms")
    print()
    return compiled, report


def main() -> None:
    print("== Listing 1: the word-count kernel the paper analyses ==")
    print(WC_PROGRAM)

    print("== Building and verifying at -O0 (debug build) ==")
    build_and_verify(OptLevel.O0)

    print("== Building and verifying at -O3 (release build) ==")
    build_and_verify(OptLevel.O3)

    print("== Building and verifying at -OVERIFY ==")
    overify, report = build_and_verify(OptLevel.OVERIFY)

    print("== The -OVERIFY main(): note the branch-free loop body "
          "(compare with the paper's Listing 2) ==")
    print(print_function(overify.module.get_function("main")))

    print("== Test inputs generated for every explored path ==")
    for path in report.paths[:10]:
        print(f"  path {path.state_id}: input={path.test_input!r} "
              f"return={path.return_value}")


if __name__ == "__main__":
    main()
