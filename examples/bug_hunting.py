#!/usr/bin/env python3
"""Bug hunting across optimization levels (the paper's §4 parity check).

The paper reports: "We verified that indeed all bugs discovered by KLEE with
-O0 and -O3 are also found with -OSYMBEX" — i.e. compiling for verification
does not hide defects, it only finds them faster.

This example takes the two deliberately buggy utilities in the workload
suite (an out-of-bounds write and a division by zero), symbolically executes
each build, compares the bug sets, and measures how much sooner the
-OVERIFY build finds them.

Run with:  python examples/bug_hunting.py
"""

import time

from repro.pipelines import CompileOptions, OptLevel, compile_source
from repro.symex import SymexLimits, explore
from repro.workloads import all_workloads

LEVELS = [OptLevel.O0, OptLevel.O3, OptLevel.OVERIFY]


def hunt(workload) -> None:
    print(f"== {workload.name}: {workload.description}")
    found = {}
    for level in LEVELS:
        compiled = compile_source(workload.source, CompileOptions(level=level))
        start = time.perf_counter()
        report = explore(compiled.module, 3,
                         limits=SymexLimits(timeout_seconds=60))
        elapsed = time.perf_counter() - start
        kinds = sorted({bug.kind.value for bug in report.bugs})
        found[level] = set(kinds)
        inputs = sorted({bug.test_input for bug in report.bugs
                         if bug.test_input is not None})
        print(f"  {str(level):9} {elapsed * 1000:7.1f} ms  "
              f"paths={report.stats.total_paths:4d}  bugs={kinds}  "
              f"triggering inputs={inputs[:3]}")
    missing = (found[OptLevel.O0] | found[OptLevel.O3]) - found[OptLevel.OVERIFY]
    if missing:
        print(f"  !! -OVERIFY missed: {missing}")
    else:
        print("  parity holds: every bug found at -O0/-O3 is also found "
              "at -OVERIFY")
    print()


def main() -> None:
    for workload in all_workloads("buggy"):
        hunt(workload)


if __name__ == "__main__":
    main()
