#!/usr/bin/env python3
"""Figure 3: the three build configurations of one project.

A development team keeps (at least) three configurations of the same source:

* a debug build (``-O0`` here, standing in for ``-g -Wall``),
* a release build (``-O3 -DNDEBUG``), and — the paper's proposal —
* a verification build (``-OVERIFY``) handed to automated analysis tools.

This example builds one Coreutils-like utility in all three configurations
through a single :class:`CompilerSession` (so the front end is parsed once
and analyses transfer across the builds), prints each pipeline in the
registry's textual syntax, runs the release build on concrete input, and
runs the verification build through the symbolic-execution backend to
produce bug reports and a generated test suite.

Run with:  python examples/build_chain.py [workload-name]
"""

import sys

from repro.harness import format_pass_history
from repro.pipelines import CompilerSession, OptLevel, level_spec
from repro.verification import VerificationRequest, make_backend
from repro.workloads import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "grep"
    workload = get_workload(name)
    print(f"project: {name} — {workload.description}\n")

    configurations = {
        "debug & develop": OptLevel.O0,
        "release": OptLevel.O3,
        "automated analysis": OptLevel.OVERIFY,
    }

    session = CompilerSession()
    built = {}
    for purpose, level in configurations.items():
        compiled = session.compile(workload.source, level=level)
        built[purpose] = compiled
        passes = [str(p) for p in level_spec(level)]
        libc = "verification libC" if level is OptLevel.OVERIFY \
            else "execution libC"
        print(f"[{purpose:>18}] {level}  ({len(passes)} passes, links {libc})")
        print(f"{'':>21}passes: {','.join(passes[:6])}"
              f"{',...' if len(passes) > 6 else ''}")
        print(f"{'':>21}static instructions: {compiled.instruction_count}")
        if compiled.analysis_stats is not None:
            cache = compiled.analysis_stats
            print(f"{'':>21}analysis cache: {cache.hits} hits / "
                  f"{cache.misses} misses "
                  f"({cache.hit_rate:.0%} hit rate, "
                  f"{cache.transfers} transferred from siblings)")
    print()

    print("The -OVERIFY pipeline as a textual spec (parse_pipeline accepts "
          "this back):")
    print(f"  {built['automated analysis'].pipeline_text}\n")

    print("What the session shared across the three builds:")
    for key, value in session.stats.as_dict().items():
        print(f"  {key:<22}{value}")
    print()

    print("Per-pass timing of the verification pipeline (cached analyses):")
    overify = built["automated analysis"]
    print(format_pass_history(overify.pass_history[:12],
                              title="-OVERIFY pipeline (first 12 pass runs)"))
    print()

    request = VerificationRequest(
        symbolic_input_bytes=4,
        concrete_input=b"vXhello worldX\n",
        timeout_seconds=60.0,
    )

    print("Running the release build on concrete input "
          "(what end users execute):")
    release = make_backend("interp").verify(built["release"].module, request)
    print(f"  exit value: {release.return_value}, "
          f"{release.instructions} instructions executed\n")

    print("Running the verification build through the symex backend "
          "(what the analysis bot does on every commit):")
    outcome = make_backend("symex").verify(built["automated analysis"].module,
                                           request)
    report = outcome.detail
    print(f"  explored paths : {outcome.paths}")
    print(f"  detected bugs  : {len(report.bugs)}")
    for bug in report.bugs:
        print(f"    - {bug.kind.value} in @{bug.function} "
              f"(triggering input {bug.test_input!r})")
    print("  generated tests:")
    for path in report.paths[:8]:
        print(f"    input={path.test_input!r} -> return {path.return_value}")


if __name__ == "__main__":
    main()
