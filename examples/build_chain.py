#!/usr/bin/env python3
"""Figure 3: the three build configurations of one project.

A development team keeps (at least) three configurations of the same source:

* a debug build (``-O0`` here, standing in for ``-g -Wall``),
* a release build (``-O3 -DNDEBUG``), and — the paper's proposal —
* a verification build (``-OVERIFY``) handed to automated analysis tools.

This example builds one Coreutils-like utility in all three configurations,
shows which passes each pipeline runs and which C library it links, runs the
release build on concrete input, and runs the verification build through the
symbolic executor to produce bug reports and a generated test suite.

Run with:  python examples/build_chain.py [workload-name]
"""

import sys

from repro.harness import format_pass_history
from repro.interp import run_module
from repro.pipelines import (
    CompileOptions, OptLevel, compile_source, pipeline_description,
)
from repro.symex import SymexLimits, explore
from repro.workloads import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "grep"
    workload = get_workload(name)
    print(f"project: {name} — {workload.description}\n")

    configurations = {
        "debug & develop": OptLevel.O0,
        "release": OptLevel.O3,
        "automated analysis": OptLevel.OVERIFY,
    }

    built = {}
    for purpose, level in configurations.items():
        compiled = compile_source(workload.source, CompileOptions(level=level))
        built[purpose] = compiled
        passes = pipeline_description(level)
        libc = "verification libC" if level is OptLevel.OVERIFY \
            else "execution libC"
        print(f"[{purpose:>18}] {level}  ({len(passes)} passes, links {libc})")
        print(f"{'':>21}passes: {', '.join(passes[:8])}"
              f"{' ...' if len(passes) > 8 else ''}")
        print(f"{'':>21}static instructions: {compiled.instruction_count}")
        if compiled.analysis_stats is not None:
            cache = compiled.analysis_stats
            print(f"{'':>21}analysis cache: {cache.hits} hits / "
                  f"{cache.misses} misses "
                  f"({cache.hit_rate:.0%} hit rate)")
    print()

    print("Per-pass timing of the verification pipeline (cached analyses):")
    overify = built["automated analysis"]
    print(format_pass_history(overify.pass_history[:12],
                              title="-OVERIFY pipeline (first 12 pass runs)"))
    print()

    print("Running the release build on concrete input "
          "(what end users execute):")
    release = built["release"]
    result = run_module(release.module, b"vXhello worldX\n")
    print(f"  exit value: {result.return_value}, "
          f"{result.stats.instructions_executed} instructions executed\n")

    print("Running the verification build through the symbolic executor "
          "(what the analysis bot does on every commit):")
    analysis = built["automated analysis"]
    report = explore(analysis.module, 4,
                     limits=SymexLimits(timeout_seconds=60))
    print(f"  explored paths : {report.stats.total_paths}")
    print(f"  detected bugs  : {len(report.bugs)}")
    for bug in report.bugs:
        print(f"    - {bug.kind.value} in @{bug.function} "
              f"(triggering input {bug.test_input!r})")
    print("  generated tests:")
    for path in report.paths[:8]:
        print(f"    input={path.test_input!r} -> return {path.return_value}")


if __name__ == "__main__":
    main()
