"""Benchmark: sessioned vs. unsessioned multi-level compilation.

The CompilerSession redesign targets exactly the shape of the paper's
Table 1/3 experiments — the same source compiled at every level.  A shared
session parses the source once and translates CFG-shaped analyses of the
freshly lowered modules across levels instead of recomputing them, so the
sessioned sweep should trend faster (and show a strictly higher aggregate
analysis-cache hit rate) than four independent compiles.

Run with:  python -m pytest benchmarks/test_session_bench.py --benchmark-only
"""

import pytest

from repro.pipelines import (
    CompilerSession, OptLevel, compile_at_all_levels, compile_source,
)
from repro.workloads import all_workloads

SWEEP_LEVELS = [OptLevel.O0, OptLevel.O2, OptLevel.O3, OptLevel.OVERIFY]


def _largest_workload():
    return max(all_workloads(), key=lambda w: len(w.source))


def test_all_levels_unsessioned(benchmark):
    """Baseline: four independent cold compiles (no shared state)."""
    workload = _largest_workload()
    stats = []

    def sweep():
        results = {level: compile_source(workload.source, level=level)
                   for level in SWEEP_LEVELS}
        stats.append(results)
        return results

    benchmark.pedantic(sweep, rounds=3, warmup_rounds=1)
    results = stats[-1]
    hits = sum(r.analysis_stats.hits for r in results.values())
    misses = sum(r.analysis_stats.misses for r in results.values())
    benchmark.extra_info["workload"] = workload.name
    benchmark.extra_info["analysis_hit_rate"] = round(hits / (hits + misses), 4)


def test_all_levels_sessioned(benchmark):
    """The same sweep through one CompilerSession per round."""
    workload = _largest_workload()
    sessions = []

    def sweep():
        session = CompilerSession()
        results = compile_at_all_levels(workload.source, levels=SWEEP_LEVELS,
                                        session=session)
        sessions.append(session)
        return results

    benchmark.pedantic(sweep, rounds=3, warmup_rounds=1)
    session = sessions[-1]
    aggregate = session.analysis_stats
    benchmark.extra_info["workload"] = workload.name
    benchmark.extra_info["analysis_hit_rate"] = round(aggregate.hit_rate, 4)
    benchmark.extra_info["analysis_transfers"] = aggregate.transfers
    benchmark.extra_info["frontend_reuses"] = session.stats.frontend_reuses
    assert aggregate.transfers > 0
