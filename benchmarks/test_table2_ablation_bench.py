"""Ablation benchmark (the measured version of the paper's Table 2).

Each benchmark verifies the wc kernel under one configuration: the full
-OVERIFY pipeline, -OVERIFY with individual design choices disabled, and the
CPU-oriented baselines.  Comparing the timings quantifies how much each
design choice contributes — the ablation DESIGN.md calls for.
"""

import pytest

from repro.harness.table2 import ablation_variants
from repro.pipelines import compile_source
from repro.symex import SymexLimits, explore
from repro.workloads import WC_PROGRAM

from conftest import SYMBOLIC_INPUT_BYTES

VARIANTS = ablation_variants()


@pytest.mark.parametrize("variant", VARIANTS, ids=[v.name for v in VARIANTS])
def test_table2_ablation_verification_time(benchmark, variant):
    compiled = compile_source(WC_PROGRAM, variant.options)

    def verify():
        return explore(compiled.module, SYMBOLIC_INPUT_BYTES,
                       limits=SymexLimits(timeout_seconds=60.0))

    report = benchmark(verify)
    benchmark.extra_info["paths"] = report.stats.total_paths
    benchmark.extra_info["solver_queries"] = report.solver_stats.queries


def test_ablation_shape():
    """The full configuration explores no more paths than any ablated one
    and far fewer than the -O0 baseline."""
    results = {}
    for variant in VARIANTS:
        compiled = compile_source(WC_PROGRAM, variant.options)
        report = explore(compiled.module, SYMBOLIC_INPUT_BYTES,
                         limits=SymexLimits(timeout_seconds=60.0))
        results[variant.name] = report.stats.total_paths
    full = results["full -OVERIFY"]
    assert all(full <= paths for paths in results.values())
    assert full * 10 <= results["-O0 (debug)"]
