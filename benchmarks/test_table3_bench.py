"""Benchmark for Table 3: cost of compiling the Coreutils-like suite at each
level, plus the transformation-count shape check.

The timing series shows how much more work the -OVERIFY pipeline does at
compile time; the extra_info carries the four Table 3 counters.
"""

import pytest

from repro.harness.table3 import TABLE3_LEVELS, reproduce_table3
from repro.pipelines import CompileOptions, OptLevel, compile_source
from repro.workloads import all_workloads

#: A representative subset keeps each benchmark iteration under a second.
BENCH_WORKLOADS = ["wc", "cat", "grep", "uniq", "tr", "cut", "seq",
                   "basename", "expr", "sum"]


@pytest.mark.parametrize("level", TABLE3_LEVELS, ids=[str(l) for l in TABLE3_LEVELS])
def test_table3_compile_suite(benchmark, level):
    """Compile the workload subset at one level and record the Table 3 row."""
    sources = [w.source for w in all_workloads("coreutils")
               if w.name in BENCH_WORKLOADS]

    def compile_all():
        totals = {"functions_inlined": 0, "loops_unswitched": 0,
                  "loops_unrolled": 0, "branches_converted": 0}
        for source in sources:
            result = compile_source(source, CompileOptions(
                level=level, verification_libc=False))
            for key, value in result.table3_row().items():
                totals[key] += value
        return totals

    totals = benchmark.pedantic(compile_all, rounds=1, iterations=1)
    for key, value in totals.items():
        benchmark.extra_info[key] = value


def test_table3_counts_shape():
    """The paper's qualitative claim: every transformation count grows (or
    stays equal) with optimization aggressiveness, and -OVERIFY transforms
    strictly more overall than -O3."""
    table = reproduce_table3(workload_names=BENCH_WORKLOADS)
    assert table.monotonic_in_aggressiveness()
    o3_total = sum(table.totals[OptLevel.O3].values())
    overify_total = sum(table.totals[OptLevel.OVERIFY].values())
    assert 0 < o3_total < overify_total
