"""Benchmark for Figure 4: per-program compile+analysis time at -O0 / -O3 /
-OVERIFY over a sample of the Coreutils-like suite.

Each (program, level) pair is one benchmark; comparing the timings across
levels for a fixed program regenerates that program's bar in Figure 4, and
the shape test at the bottom checks the aggregate claims (positive mean
reduction, no -OVERIFY timeouts).
"""

import pytest

from repro.harness.figure4 import FIGURE4_LEVELS, reproduce_figure4
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.pipelines import OptLevel
from repro.workloads import get_workload

from conftest import SYMBOLIC_INPUT_BYTES

#: Figure 4 sample: a mix of cheap and branch-heavy utilities.
FIGURE4_PROGRAMS = ["echo", "grep", "wc", "tr", "head", "cut", "od", "strings"]


@pytest.mark.parametrize("level", FIGURE4_LEVELS,
                         ids=[str(l) for l in FIGURE4_LEVELS])
@pytest.mark.parametrize("program", FIGURE4_PROGRAMS)
def test_figure4_program_level(benchmark, program, level):
    """Compile+analyse one program at one level (one bar segment)."""
    workload = get_workload(program)
    config = ExperimentConfig(level=level,
                              symbolic_input_bytes=SYMBOLIC_INPUT_BYTES,
                              timeout_seconds=30.0,
                              max_instructions=300_000)

    def one_experiment():
        return run_experiment(workload.name, workload.source, config)

    result = benchmark.pedantic(one_experiment, rounds=1, iterations=1)
    benchmark.extra_info["paths"] = result.paths
    benchmark.extra_info["timed_out"] = result.timed_out
    benchmark.extra_info["interpreted_instructions"] = \
        result.interpreted_instructions


def test_figure4_aggregate_shape():
    """Aggregate claims: -OVERIFY reduces the total compile+analysis time of
    the sample versus -O0 and never times out on it."""
    workloads = [get_workload(name) for name in FIGURE4_PROGRAMS[:5]]
    figure = reproduce_figure4(symbolic_input_bytes=SYMBOLIC_INPUT_BYTES,
                               timeout_seconds=30.0,
                               max_instructions=300_000,
                               workloads=workloads)
    assert figure.total_time_reduction_vs(OptLevel.O0) > 0.3
    assert figure.timeouts(OptLevel.OVERIFY) == 0
    assert figure.max_speedup_vs(OptLevel.O0) > 2.0
