"""Benchmark for the compile side of the pipeline: front end + pass pipeline
at every optimization level on the largest registered workload.

The analysis-manager refactor targets exactly this cost — the paper's
Table 3 / Figure 4 wall-clock is dominated by how fast the (much longer)
-OVERIFY pipeline can run — so tracking ``build_pipeline(level).run(module)``
across levels makes the compile-side effect of analysis caching visible in
the benchmark trajectory.

Run with:  python -m pytest benchmarks/test_pipeline_compile_bench.py --benchmark-only
"""

import pytest

from repro.frontend import analyze, lower, parse
from repro.pipelines import CompileOptions, OptLevel, build_pipeline, link_sources
from repro.workloads import all_workloads

LEVELS = [OptLevel.O0, OptLevel.O1, OptLevel.O2, OptLevel.O3,
          OptLevel.OVERIFY]


def _largest_workload():
    return max(all_workloads(), key=lambda w: len(w.source))


def _lower_workload(level: OptLevel):
    workload = _largest_workload()
    source = link_sources(workload.source, CompileOptions(level=level))
    unit = parse(source)
    analyze(unit)
    return workload, lower(unit, workload.name)


@pytest.mark.parametrize("level", LEVELS, ids=[str(l) for l in LEVELS])
def test_pipeline_compile_time(benchmark, level):
    """Pipeline construction + run on a freshly lowered module (the front
    end runs in the per-round setup, outside the timed region)."""
    workload = _largest_workload()
    pipelines = []

    def setup():
        # Lower anew each round: passes mutate the module in place.
        _, module = _lower_workload(level)
        return (module,), {}

    def build_and_run(module):
        pipeline = build_pipeline(level)
        pipeline.run_until_fixpoint(module)
        pipelines.append(pipeline)

    benchmark.pedantic(build_and_run, setup=setup, rounds=3,
                       warmup_rounds=1)
    pipeline = pipelines[-1]
    stats = pipeline.analyses.stats
    benchmark.extra_info["workload"] = workload.name
    benchmark.extra_info["level"] = str(level)
    benchmark.extra_info["passes_run"] = len(pipeline.history)
    benchmark.extra_info["analysis_cache_hits"] = stats.hits
    benchmark.extra_info["analysis_cache_misses"] = stats.misses
    benchmark.extra_info["analysis_cache_hit_rate"] = round(stats.hit_rate, 3)


def test_analysis_cache_effective_on_overify():
    """Smoke check (no --benchmark-only needed): the -OVERIFY pipeline —
    the longest one — actually exercises the analysis cache."""
    _, module = _lower_workload(OptLevel.OVERIFY)
    pipeline = build_pipeline(OptLevel.OVERIFY)
    pipeline.run_until_fixpoint(module)
    stats = pipeline.analyses.stats
    assert stats.hits > 0, "expected analysis cache hits in a long pipeline"
    assert stats.misses > 0
