"""Benchmark: translation validation cold vs store-warmed vs memoized.

Relcheck discharges its per-path equivalence queries through the same
solver stack the backends use, so the PR 7 knowledge store must amortize
re-checks the way it amortizes re-verification: a warm run (solver
caches primed from a cold run's store) answers its group queries from
store records, and an unchanged module pair short-circuits entirely
through the whole-run memo.  The floor assertions — zero divergences,
warm runs actually hitting the store, memo runs returning byte-identical
verdicts — hold under ``--benchmark-disable`` too (the check.sh smoke).

Run with:  python -m pytest benchmarks/test_relcheck_bench.py --benchmark-only
"""

import pytest

from repro.pipelines import CompileOptions, OptLevel, compile_source
from repro.relcheck import RelcheckConfig, relcheck_modules
from repro.service.store import SolverKnowledgeStore
from repro.symex import SharedSolverCaches
from repro.workloads import get_workload

PAIR = (OptLevel.O0, OptLevel.OVERIFY)
INPUT_BYTES = 3
CONFIG = RelcheckConfig(input_bytes=INPUT_BYTES, timeout_seconds=120.0)


@pytest.fixture(scope="module")
def wc_pair():
    source = get_workload("wc").source
    return tuple(compile_source(source, CompileOptions(level=level)).module
                 for level in PAIR)


def _check(module_a, module_b, **kwargs):
    return relcheck_modules(module_a, module_b, config=CONFIG,
                            pair=("-O0", "-OVERIFY"), **kwargs)


def _verdict_content(report):
    return [(v.index, v.kind, v.status, v.counterexample)
            for v in report.verdicts]


def test_relcheck_cold(benchmark, wc_pair):
    module_a, module_b = wc_pair
    report = benchmark.pedantic(lambda: _check(module_a, module_b),
                                rounds=3, warmup_rounds=0)
    assert report.clean and not report.truncated
    assert report.stats.paths_proved >= 1
    benchmark.extra_info["paths_proved"] = report.stats.paths_proved
    benchmark.extra_info["equivalence_folded"] = \
        report.stats.equivalence_folded


def test_relcheck_warm_floor(benchmark, wc_pair, tmp_path):
    """Warm floor: a store-primed re-check reproduces the cold verdicts
    exactly and really answers from the store (store_hits > 0)."""
    module_a, module_b = wc_pair
    store_path = tmp_path / "knowledge.jsonl"
    cold = _check(module_a, module_b, store=SolverKnowledgeStore(store_path))
    assert cold.clean and not cold.truncated

    reports = []

    def warm_run():
        store = SolverKnowledgeStore(store_path)
        assert store.load()
        caches = SharedSolverCaches(num_stripes=1)
        store.prime(caches)
        # No store handed to the run: the whole-run memo must not
        # short-circuit what this test is measuring.
        report = _check(module_a, module_b, shared_caches=caches)
        reports.append(report)
        return report

    benchmark.pedantic(warm_run, rounds=3, warmup_rounds=0)
    warm = reports[-1]
    assert warm.clean and not warm.truncated
    assert _verdict_content(warm) == _verdict_content(cold)
    assert warm.solver_stats.store_hits > 0
    benchmark.extra_info["store_hits"] = warm.solver_stats.store_hits


def test_relcheck_memo_floor(benchmark, wc_pair, tmp_path):
    """Memo floor: an unchanged pair re-checks via the whole-run memo —
    provenance ``memo-hit``, verdicts and counters byte-identical."""
    module_a, module_b = wc_pair
    store_path = tmp_path / "knowledge.jsonl"
    cold = _check(module_a, module_b, store=SolverKnowledgeStore(store_path))
    assert cold.clean and cold.provenance == "cold"

    def memo_run():
        store = SolverKnowledgeStore(store_path)
        assert store.load()
        return _check(module_a, module_b, store=store)

    memo = benchmark.pedantic(memo_run, rounds=3, warmup_rounds=0)
    assert memo.provenance == "memo-hit"
    assert memo.clean
    assert _verdict_content(memo) == _verdict_content(cold)
    assert memo.stats.as_dict() == cold.stats.as_dict()
