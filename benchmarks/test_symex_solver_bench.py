"""Benchmark for the solver hot path on a branch-heavy workload.

The program below forks at four input-dependent branches per input byte, so
the solver sees the classic symbolic-execution query mix: many small
overlapping conjunctions re-asked across sibling states.  The benchmark
asserts the floors the optimized query stack must hold:

* cache behaviour — the overwhelming share of queries is answered without a
  CSP search (query cache, group cache, model reuse, interval fast path);
* branch sharing — strictly fewer than one query per branch on average
  (an UNSAT side answers the other side for free, seed engine: ~1.13);
* strictly less search work (``assignments_tried``) than the naive
  configuration (``enable_cache=False, enable_independence=False``) on the
  identical exploration.

``scripts/bench_record.py`` records the same workload into
``BENCH_symex.json`` to track the perf trajectory across PRs.
"""

from repro.frontend import compile_to_ir
from repro.symex import Solver, SymexLimits, explore

from conftest import TIMEOUT_SECONDS

BRANCH_HEAVY_PROGRAM = r"""
int main(unsigned char *input, int len) {
    int acc = 0;
    for (int i = 0; i < len; i++) {
        unsigned char c = input[i];
        if (c > 'a') { acc += 1; }
        if (c > 'm') { acc += 2; }
        if (c == 'z') { acc += 4; }
        if ((c & 0x0F) == 3) { acc += 8; }
    }
    if (acc > 6) { return 1; }
    return acc;
}
"""

#: Symbolic input size for the branch-heavy exploration (4^3 leaf shapes).
INPUT_BYTES = 3

#: Fraction of solver queries that must be answered without a CSP search.
CACHE_HIT_RATE_FLOOR = 0.90


def _explore(solver=None):
    module = compile_to_ir(BRANCH_HEAVY_PROGRAM)
    return explore(module, INPUT_BYTES,
                   limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS),
                   solver=solver)


def test_branch_heavy_exploration_time(benchmark):
    """Wall-clock of the full exploration with the optimized solver."""
    report = benchmark(_explore)
    stats = report.solver_stats
    benchmark.extra_info["paths"] = report.stats.total_paths
    benchmark.extra_info["queries"] = stats.queries
    benchmark.extra_info["csp_searches"] = stats.csp_searches
    benchmark.extra_info["assignments_tried"] = stats.assignments_tried

    assert report.stats.total_paths >= 100
    # Cache-hit-rate floor: queries decided without launching a CSP search.
    hit_rate = 1.0 - stats.csp_searches / max(1, stats.queries)
    assert hit_rate >= CACHE_HIT_RATE_FLOOR, \
        f"solver cache hit rate {hit_rate:.2%} below floor"
    assert stats.cache_hits > 0
    assert stats.model_cache_hits > 0


def test_optimized_solver_does_strictly_less_work_than_naive():
    """The caching/independence/model-reuse stack must strictly reduce both
    queries-per-branch and tried assignments against a naive configuration
    exploring the same program."""
    optimized_report = _explore()
    naive_report = _explore(
        solver=Solver(enable_cache=False, enable_independence=False))

    # Identical exploration results first: same paths, same branches.
    assert optimized_report.stats.total_paths == \
        naive_report.stats.total_paths
    assert optimized_report.stats.branches_encountered == \
        naive_report.stats.branches_encountered

    optimized = optimized_report.solver_stats
    naive = naive_report.solver_stats
    assert optimized.assignments_tried < naive.assignments_tried
    assert optimized.csp_searches < naive.csp_searches

    # Branch sharing: strictly fewer than one query per branch on average
    # (the seed engine issued ~1.13 on this workload).
    branches = optimized_report.stats.branches_encountered
    assert optimized.queries / branches < 1.0
    assert optimized.branch_sides_free > 0
