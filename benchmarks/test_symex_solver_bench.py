"""Benchmarks for the solver hot path.

Three workloads cover the solver's query mixes:

* a **branch-heavy** program forking at four input-dependent branches per
  byte — the classic mix of many small overlapping conjunctions re-asked
  across sibling states (cache floors, branch sharing, UBTree hits);
* a **wide-variable** program whose interesting branches constrain a
  32-bit value from the environment — the mix the sparse-domain fallback
  answered inexactly and branch-and-prune must now decide exactly;
* the Table 1 **wc sweep**, the repo's headline trajectory number, with a
  wall-clock regression floor (asserted only when timing is enabled, so
  CI's ``--benchmark-disable`` smoke stays load-independent) and a
  deterministic assignments floor against the PR 3 entry.

``scripts/bench_record.py`` records the same workloads into
``BENCH_symex.json`` to track the perf trajectory across PRs.
"""

import os
import time

from repro.frontend import compile_to_ir
from repro.pipelines import CompileOptions, OptLevel, compile_source
from repro.symex import Solver, SolverConfig, SymexLimits, explore
from repro.workloads import WC_PROGRAM

from conftest import TIMEOUT_SECONDS

BRANCH_HEAVY_PROGRAM = r"""
int main(unsigned char *input, int len) {
    int acc = 0;
    for (int i = 0; i < len; i++) {
        unsigned char c = input[i];
        if (c > 'a') { acc += 1; }
        if (c > 'm') { acc += 2; }
        if (c == 'z') { acc += 4; }
        if ((c & 0x0F) == 3) { acc += 8; }
    }
    if (acc > 6) { return 1; }
    return acc;
}
"""

#: Symbolic input size for the branch-heavy exploration (4^3 leaf shapes).
INPUT_BYTES = 3

#: Fraction of solver queries that must be answered without a CSP search.
CACHE_HIT_RATE_FLOOR = 0.90

#: ``assignments_tried`` of the PR 3 entry in BENCH_symex.json on the
#: branch-heavy workload; the Solver-v2 stack must stay strictly below it.
PR3_BRANCH_HEAVY_ASSIGNMENTS = 5395

#: The wide-variable workload: ``read_value()`` is an unknown external, so
#: the executor havocs it with a fresh 32-bit symbolic variable.  Two of
#: the branches are infeasible under the path condition; the sparse-domain
#: fallback could only answer "maybe satisfiable" and explored them.
WIDE_VALUE_PROGRAM = r"""
int read_value();

int main(unsigned char *input, int len) {
    int n = read_value();
    int hits = 0;
    if (n < 0) { return 0; }
    if (n > 1000000) { return 1; }
    if (n > 2000000) { hits = 1; }      /* infeasible: n <= 1000000 */
    if (n * 2 < 0) { hits = hits + 2; } /* infeasible: 2n <= 2000000 */
    if (input[0] == 'x') { hits = hits + 4; }
    return hits;
}
"""

#: Wall-clock floor for the Table 1 wc sweep (4 symbolic bytes, all four
#: levels); the PR 3 entry recorded 2.006s, the PR 4 entry 1.882s, and the
#: path-count PR dropped it below 0.2s.  The assertion takes the best of
#: two rounds (min-of-N is the standard noise-robust measure) and the
#: floor can be raised via the environment for slower machines.
WC_SWEEP_FLOOR_SECONDS = float(os.environ.get("WC_SWEEP_FLOOR_SECONDS",
                                              "0.75"))
WC_SWEEP_LEVELS = (OptLevel.O0, OptLevel.O2, OptLevel.O3, OptLevel.OVERIFY)
WC_SWEEP_INPUT_BYTES = 4

#: ``assignments_tried`` of the PR 3 entry on the wc sweep at -O0.
PR3_WC_O0_ASSIGNMENTS = 16931

#: Exact wc path counts per level (4 symbolic bytes) after the path-count
#: PR.  The seed explored 1605 paths at -O0/-O1/-O2: branch-free
#: short-circuit lowering collapsed every level to 96, and the -O2/-O3
#: scalar stack (SCCP, load elimination, algebraic simplification) plus a
#: clang-sized ifconvert budget takes the optimizing levels to 26.  The
#: engine is deterministic, so these are equalities, not ceilings; a
#: change in either direction is a trajectory event that must be looked at
#: (and this table re-baselined deliberately).
WC_SWEEP_PATHS = {
    OptLevel.O0: 96,
    OptLevel.O2: 26,
    OptLevel.O3: 26,
    OptLevel.OVERIFY: 4,
}


def _explore(solver=None):
    module = compile_to_ir(BRANCH_HEAVY_PROGRAM)
    return explore(module, INPUT_BYTES,
                   limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS),
                   solver=solver)


def test_branch_heavy_exploration_time(benchmark):
    """Wall-clock of the full exploration with the optimized solver."""
    report = benchmark(_explore)
    stats = report.solver_stats
    benchmark.extra_info["paths"] = report.stats.total_paths
    benchmark.extra_info["queries"] = stats.queries
    benchmark.extra_info["csp_searches"] = stats.csp_searches
    benchmark.extra_info["assignments_tried"] = stats.assignments_tried

    assert report.stats.total_paths >= 100
    # Cache-hit-rate floor: queries decided without launching a CSP search.
    hit_rate = 1.0 - stats.csp_searches / max(1, stats.queries)
    assert hit_rate >= CACHE_HIT_RATE_FLOOR, \
        f"solver cache hit rate {hit_rate:.2%} below floor"
    assert stats.cache_hits > 0
    assert stats.model_cache_hits > 0


def test_optimized_solver_does_strictly_less_work_than_naive():
    """The caching/independence/model-reuse stack must strictly reduce both
    queries-per-branch and tried assignments against a naive configuration
    exploring the same program."""
    optimized_report = _explore()
    naive_report = _explore(
        solver=Solver(enable_cache=False, enable_independence=False))

    # Identical exploration results first: same paths, same branches.
    assert optimized_report.stats.total_paths == \
        naive_report.stats.total_paths
    assert optimized_report.stats.branches_encountered == \
        naive_report.stats.branches_encountered

    optimized = optimized_report.solver_stats
    naive = naive_report.solver_stats
    assert optimized.assignments_tried < naive.assignments_tried
    assert optimized.csp_searches < naive.csp_searches

    # Branch sharing: strictly fewer than one query per branch on average
    # (the seed engine issued ~1.13 on this workload).
    branches = optimized_report.stats.branches_encountered
    assert optimized.queries / branches < 1.0
    assert optimized.branch_sides_free > 0


def test_ubtree_index_carries_the_counterexample_cache():
    """The UBTree index must answer a real share of the branch-heavy group
    queries and do strictly less search work than the PR 3 linear-scan
    entry recorded in BENCH_symex.json."""
    report = _explore()
    stats = report.solver_stats
    assert stats.ubtree_hits > 0
    assert stats.model_cache_hits > 0
    assert stats.assignments_tried < PR3_BRANCH_HEAVY_ASSIGNMENTS

    # The index must never disagree with the linear scan it replaced.
    linear = _explore(solver=Solver(config=SolverConfig(ubtree=False)))
    assert report.stats.total_paths == linear.stats.total_paths
    assert report.bug_signatures() == linear.bug_signatures()


def test_branch_and_prune_makes_wide_queries_exact(benchmark):
    """Wide-variable explorations must report exact answers (no
    ``unknown_results``) and prune the infeasible branches the sparse
    fallback explored."""
    module = compile_to_ir(WIDE_VALUE_PROGRAM)

    def run():
        return explore(module, 2,
                       limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))

    report = benchmark(run)
    stats = report.solver_stats
    benchmark.extra_info["paths"] = report.stats.total_paths
    benchmark.extra_info["prune_splits"] = stats.prune_splits
    assert stats.unknown_results == 0, "wide queries must be exact"
    assert stats.prune_splits > 0
    # The two infeasible branches are pruned: only the four feasible
    # outcomes (early exits plus the input[0] fork) remain.
    assert report.stats.total_paths == 4
    assert {p.return_value for p in report.paths} == {0, 1, 4}

    sparse = explore(module, 2,
                     limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS),
                     solver=Solver(config=SolverConfig(
                         branch_and_prune=False)))
    assert sparse.solver_stats.unknown_results > 0
    assert sparse.stats.total_paths > report.stats.total_paths


def test_wc_sweep_regression_floor(benchmark):
    """The Table 1 sweep must hold the trajectory floors: the exact
    per-level path counts of ``WC_SWEEP_PATHS``, wall clock no worse than
    the recorded floor (timing asserted only when the benchmark actually
    times, so smoke runs stay load-independent), and strictly fewer
    assignments than the PR 3 entry at -O0."""
    modules = {
        level: compile_source(WC_PROGRAM,
                              CompileOptions(level=level)).module
        for level in WC_SWEEP_LEVELS
    }

    def sweep():
        seconds = 0.0
        reports = {}
        for level, module in modules.items():
            start = time.perf_counter()
            reports[level] = explore(
                module, WC_SWEEP_INPUT_BYTES,
                limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))
            seconds += time.perf_counter() - start
        return seconds, reports

    seconds, reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    timings = [seconds]
    if benchmark.enabled:  # a second round so a load spike cannot flake
        seconds, reports = sweep()
        timings.append(seconds)
    best = min(timings)
    o0 = reports[OptLevel.O0].solver_stats
    benchmark.extra_info["sweep_seconds"] = round(best, 3)
    benchmark.extra_info["o0_assignments_tried"] = o0.assignments_tried
    assert o0.assignments_tried < PR3_WC_O0_ASSIGNMENTS
    for level in WC_SWEEP_LEVELS:
        assert reports[level].stats.total_paths == WC_SWEEP_PATHS[level], \
            f"{level}: {reports[level].stats.total_paths} paths " \
            f"(expected {WC_SWEEP_PATHS[level]}; seed was 1605 at -O0)"
        # The paper's safety property: optimizing for paths must not lose
        # bugs.  wc is bug-free, so every level's signature set is empty.
        assert reports[level].bug_signatures() == \
            reports[OptLevel.O0].bug_signatures()
    if benchmark.enabled:
        assert best <= WC_SWEEP_FLOOR_SECONDS, \
            f"wc sweep took {best:.3f}s best-of-{len(timings)} " \
            f"(floor {WC_SWEEP_FLOOR_SECONDS}s)"


#: Wall-clock floor for the *4-worker* wc sweep.  The PR 4 floor was the
#: recorded 1-worker baseline (1.882s); the path-count PR collapsed the
#: sweep itself (0.13s recorded), so the floor drops with it, with the
#: same generous headroom for load spikes.  On a single-core GIL build
#: thread workers cannot win wall clock, so staying under the floor
#: demonstrates that pool coordination overhead remains negligible; on
#: multi-core (or free-threaded) machines it is a heavy understatement.
PARALLEL_SWEEP_FLOOR_SECONDS = float(
    os.environ.get("PARALLEL_SWEEP_FLOOR_SECONDS", "0.75"))


def test_parallel_wc_sweep_beats_single_worker_baseline(benchmark):
    """``workers=4`` must reproduce the 1-worker outcomes exactly and
    complete the sweep under the recorded 1-worker baseline (timing
    asserted only when the benchmark actually times)."""
    from repro.symex import explore_parallel

    modules = {
        level: compile_source(WC_PROGRAM,
                              CompileOptions(level=level)).module
        for level in WC_SWEEP_LEVELS
    }

    def sweep(workers):
        seconds = 0.0
        reports = {}
        for level, module in modules.items():
            start = time.perf_counter()
            reports[level] = explore_parallel(
                module, WC_SWEEP_INPUT_BYTES, workers=workers,
                limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))
            seconds += time.perf_counter() - start
        return seconds, reports

    seconds, pooled = benchmark.pedantic(lambda: sweep(4), rounds=1,
                                         iterations=1)
    timings = [seconds]
    if benchmark.enabled:  # a second round so a load spike cannot flake
        seconds, pooled = sweep(4)
        timings.append(seconds)
    best = min(timings)
    benchmark.extra_info["parallel_sweep_seconds"] = round(best, 3)

    _, single = sweep(1)
    for level in WC_SWEEP_LEVELS:
        assert pooled[level].stats.total_paths == \
            single[level].stats.total_paths
        assert pooled[level].stats.instructions_interpreted == \
            single[level].stats.instructions_interpreted
        assert pooled[level].bug_signatures() == \
            single[level].bug_signatures()
    if benchmark.enabled:
        assert best <= PARALLEL_SWEEP_FLOOR_SECONDS, \
            f"4-worker wc sweep took {best:.3f}s best-of-{len(timings)} " \
            f"(1-worker baseline floor {PARALLEL_SWEEP_FLOOR_SECONDS}s)"
