"""Benchmark configuration: scaled-down experiment sizes so the whole suite
runs in minutes on a laptop while preserving the paper's relative ordering."""

import pytest

#: Symbolic input size used by the benchmark harnesses (the paper used up to
#: 10 bytes with a native engine; the pure-Python engine uses fewer).
SYMBOLIC_INPUT_BYTES = 3

#: Per-benchmark verification budget.
TIMEOUT_SECONDS = 60.0
