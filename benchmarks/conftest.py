"""Benchmark configuration: scaled-down experiment sizes so the whole suite
runs in minutes on a laptop while preserving the paper's relative ordering."""

import pytest

#: Symbolic input size used by the benchmark harnesses (the paper used up to
#: 10 bytes with a native engine; the pure-Python engine uses fewer).  Raised
#: from 3 to 4 when the PR 3 solver overhaul made verification ~6x faster:
#: with one more byte the scaled experiments are verification-dominated
#: again, like the paper's originals.
SYMBOLIC_INPUT_BYTES = 4

#: Per-benchmark verification budget.
TIMEOUT_SECONDS = 60.0
