"""Benchmark for Table 1: verification cost of the wc kernel per level.

Each benchmark measures the full verify step (symbolic execution of all
paths) for one optimization level; comparing the per-level timings
regenerates the t_verify row of Table 1.  The remaining rows (compile time,
run time, interpreted instructions, path counts) are printed via
``extra_info`` so that ``pytest --benchmark-only -rP`` shows the whole table.
"""

import pytest

from repro.pipelines import CompileOptions, OptLevel, compile_source
from repro.interp import run_module
from repro.symex import SymexLimits, explore
from repro.workloads import WC_PROGRAM

from conftest import SYMBOLIC_INPUT_BYTES, TIMEOUT_SECONDS

LEVELS = [OptLevel.O0, OptLevel.O2, OptLevel.O3, OptLevel.OVERIFY]


@pytest.mark.parametrize("level", LEVELS, ids=[str(l) for l in LEVELS])
def test_table1_verification_time(benchmark, level):
    """t_verify: exhaustive path exploration of wc at each level."""
    compiled = compile_source(WC_PROGRAM, CompileOptions(level=level))

    def verify():
        return explore(compiled.module, SYMBOLIC_INPUT_BYTES,
                       limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))

    report = benchmark(verify)
    benchmark.extra_info["level"] = str(level)
    benchmark.extra_info["paths"] = report.stats.total_paths
    benchmark.extra_info["interpreted_instructions"] = \
        report.stats.instructions_interpreted
    benchmark.extra_info["compile_seconds"] = compiled.compile_seconds
    assert report.stats.total_paths >= 1


@pytest.mark.parametrize("level", LEVELS, ids=[str(l) for l in LEVELS])
def test_table1_compile_time(benchmark, level):
    """t_compile: time to run the front end plus the level's pipeline."""
    result = benchmark(compile_source, WC_PROGRAM,
                       CompileOptions(level=level))
    benchmark.extra_info["static_instructions"] = result.instruction_count


@pytest.mark.parametrize("level", LEVELS, ids=[str(l) for l in LEVELS])
def test_table1_run_time(benchmark, level):
    """t_run: concrete execution on a many-word text (the paper's 108-word
    input, scaled)."""
    compiled = compile_source(WC_PROGRAM, CompileOptions(level=level))
    text = bytes([1]) + (b"the quick brown fox jumps over the lazy dog " * 6)

    result = benchmark(run_module, compiled.module, text)
    benchmark.extra_info["concrete_instructions"] = \
        result.stats.instructions_executed
    assert not result.crashed


def test_table1_path_count_ordering():
    """Non-timing shape check kept with the benchmark for convenience:
    paths(-OVERIFY) << paths(-O3) <= paths(-O0) == paths(-O2)."""
    paths = {}
    for level in LEVELS:
        compiled = compile_source(WC_PROGRAM, CompileOptions(level=level))
        report = explore(compiled.module, SYMBOLIC_INPUT_BYTES,
                         limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))
        paths[level] = report.stats.total_paths
    assert paths[OptLevel.O0] == paths[OptLevel.O2]
    assert paths[OptLevel.OVERIFY] * 5 <= paths[OptLevel.O3]
    assert paths[OptLevel.OVERIFY] * 10 <= paths[OptLevel.O0]
